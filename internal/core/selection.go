package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"hsmodel/internal/family"
	"hsmodel/internal/family/dal"
	"hsmodel/internal/family/residual"
	"hsmodel/internal/family/spline"
	"hsmodel/internal/genetic"
	"hsmodel/internal/regress"
	"hsmodel/internal/rng"
	"hsmodel/internal/stats"
)

// SelectionResult records one run of the model-family selection harness:
// every registered family fitted against the same captured evaluator state
// and scored on the same per-application validation rows, with the winner
// published.
type SelectionResult struct {
	// Winner is the name of the selected family.
	Winner string
	// Model is the winner's fitted model.
	Model family.Model
	// Scores maps every successfully fitted family to its selection score:
	// the mean over applications of the median absolute percentage error on
	// that application's validation rows (the trainer's CV metric, without
	// the term penalty so structurally different families compare fairly).
	Scores map[string]float64
	// Errors maps each family whose Fit failed to its error. A failing
	// family is skipped, never aborts the round; the round errors only when
	// every family fails or the context is cancelled.
	Errors map[string]error
	// Population is the spline family's final search population when it
	// participated, preserved so the next Update can warm-start.
	Population []genetic.Individual
}

// ErrAllFamiliesFailed is returned by a selection round in which no
// registered family produced a model.
var ErrAllFamiliesFailed = errors.New("core: family selection: every family failed")

// DefaultFamilies returns the three built-in model families: the reference
// genetic spline search, the analytical-prior residual learner, and the
// divide-and-learn clustered splines.
func DefaultFamilies() []family.Family {
	return []family.Family{spline.New(), residual.New(), dal.New()}
}

// FamilyByName resolves a built-in family from its stable name; used when
// loading persisted snapshots. Returns nil for unknown names.
func FamilyByName(name string) family.Family {
	switch name {
	case spline.FamilyName:
		return spline.New()
	case residual.FamilyName:
		return residual.New()
	case dal.FamilyName:
		return dal.New()
	}
	return nil
}

// SelectFamily runs the selection harness standalone over an arbitrary
// dataset (any raw-variable arity — the 26-var integrated space or a domain
// space like spmv's 10 vars): it builds the trainer's weighted
// per-application splits from fc, fits every family against them, and scores
// each on the held-out rows. This is the entry the families-smoke CI check
// drives; the Trainer uses the same internal round for its own training runs.
func SelectFamily(ctx context.Context, ds *regress.Dataset, fc FitnessConfig, stabilize, logResponse bool, search genetic.Params, fams []family.Family) (*SelectionResult, error) {
	if len(fams) == 0 {
		return nil, errors.New("core: family selection: no families registered")
	}
	ev, err := newEvaluator(ds, fc, stabilize, logResponse)
	if err != nil {
		return nil, fmt.Errorf("core: featurizing samples: %w", err)
	}
	in := family.FitInput{
		NumVars:     ds.NumVars(),
		Dataset:     ds,
		Featurizer:  ev.fz,
		Evaluator:   ev,
		Search:      search,
		LogResponse: logResponse,
		Stabilize:   stabilize,
		Seed:        fc.withDefaults().Seed,
		Weights:     ev.weights,
		ValRows:     ev.valRows,
	}
	return runSelection(ctx, fams, in)
}

// runSelection fits every family against one FitInput, scores the fitted
// models on the shared validation rows, and picks the minimum. Exact score
// ties (bit-equal float64s) are broken by a seeded draw over the tied names
// in sorted order, so selection is deterministic in (families, FitInput).
func runSelection(ctx context.Context, fams []family.Family, in family.FitInput) (*SelectionResult, error) {
	sel := &SelectionResult{
		Scores: make(map[string]float64, len(fams)),
		Errors: make(map[string]error),
	}
	type candidate struct {
		name  string
		model family.Model
		score float64
	}
	var cands []candidate
	for _, f := range fams {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: family selection cancelled: %w", err)
		}
		out, ferr := f.Fit(ctx, in)
		if f.Name() == spline.FamilyName && out.Population != nil {
			sel.Population = out.Population
		}
		if ferr != nil {
			if ctx.Err() != nil {
				// A cancellation mid-fit aborts the whole round: scoring the
				// remaining families against a half-done episode would
				// publish a winner chosen on an unfair comparison.
				return nil, fmt.Errorf("core: family selection cancelled: %w", ferr)
			}
			sel.Errors[f.Name()] = ferr
			continue
		}
		score := scoreFamilyModel(out.Model, in.Dataset, in.ValRows)
		sel.Scores[f.Name()] = score
		cands = append(cands, candidate{name: f.Name(), model: out.Model, score: score})
	}
	if len(cands) == 0 {
		return sel, ErrAllFamiliesFailed
	}

	best := cands[0]
	for _, c := range cands[1:] {
		if c.score < best.score {
			best = c
		}
	}
	// Seeded tiebreak over bit-identical scores. Candidate order is the
	// registration slice, so tied is deterministic before the sort too.
	bestBits := math.Float64bits(best.score)
	var tied []candidate
	for _, c := range cands {
		if math.Float64bits(c.score) == bestBits {
			tied = append(tied, c)
		}
	}
	if len(tied) > 1 {
		sort.Slice(tied, func(i, j int) bool { return tied[i].name < tied[j].name })
		src := rng.New(in.Seed ^ 0x71eb4ea4)
		best = tied[src.Intn(len(tied))]
	}
	sel.Winner = best.name
	sel.Model = best.model
	return sel, nil
}

// scoreFamilyModel computes a fitted model's selection score: mean per-
// application MedAPE over the validation rows, identical data and metric for
// every family. With no split (empty ValRows) it scores on all rows.
func scoreFamilyModel(m family.Model, ds *regress.Dataset, valRows [][]int) float64 {
	var sum float64
	var n int
	for _, val := range valRows {
		if len(val) == 0 {
			continue
		}
		pred := make([]float64, len(val))
		truth := make([]float64, len(val))
		for k, r := range val {
			pred[k] = m.Predict(ds.X.Row(r))
			truth[k] = ds.Y[r]
		}
		sum += stats.MedianAbsPctError(pred, truth)
		n++
	}
	if n == 0 {
		pred := make([]float64, ds.NumRows())
		for i := range pred {
			pred[i] = m.Predict(ds.X.Row(i))
		}
		return stats.MedianAbsPctError(pred, ds.Y)
	}
	return sum / float64(n)
}
