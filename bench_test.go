// Package hsmodel's root benchmark suite regenerates every table and figure
// of the paper (one benchmark per experiment; see DESIGN.md §4 for the
// index) plus microbenchmarks of the substrate layers. Headline numbers are
// attached to each benchmark via ReportMetric:
//
//	go test -bench=. -benchmem
//
// Benchmarks share one Workspace (profiles are collected and the
// steady-state model trained once), so per-benchmark times reflect the
// experiment itself, not data collection.
package hsmodel

import (
	"io"
	"sync"
	"testing"

	"hsmodel/internal/core"
	"hsmodel/internal/cpu"
	"hsmodel/internal/experiments"
	"hsmodel/internal/hwspace"
	"hsmodel/internal/isa"
	"hsmodel/internal/linalg"
	"hsmodel/internal/profile"
	"hsmodel/internal/regress"
	"hsmodel/internal/rng"
	"hsmodel/internal/spmv"
	"hsmodel/internal/trace"
)

var (
	wsOnce sync.Once
	ws     *experiments.Workspace
)

// workspace returns the shared, silently-reporting experiment workspace.
func workspace() *experiments.Workspace {
	wsOnce.Do(func() {
		cfg := experiments.Quick()
		cfg.Out = io.Discard
		ws = experiments.NewWorkspace(cfg)
	})
	return ws
}

// --- paper experiments -----------------------------------------------------

func BenchmarkFig3VarianceStabilization(b *testing.B) {
	w := workspace()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig3(w)
		b.ReportMetric(res.SkewBefore, "skew-before")
		b.ReportMetric(res.SkewAfter, "skew-after")
		b.ReportMetric(1/res.Power, "power-denominator")
	}
}

func BenchmarkFig5Convergence(b *testing.B) {
	w := workspace()
	for i := 0; i < b.N; i++ {
		res, err := experiments.SearchAnatomy(w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.History[0], "gen0-sum-med-err")
		b.ReportMetric(res.History[len(res.History)-1], "final-sum-med-err")
	}
}

func BenchmarkFig4InteractionFrequency(b *testing.B) {
	w := workspace()
	for i := 0; i < b.N; i++ {
		res, err := experiments.SearchAnatomy(w)
		if err != nil {
			b.Fatal(err)
		}
		swsw, swhw, hwhw := res.RegionCounts()
		b.ReportMetric(float64(swsw), "swsw-interactions")
		b.ReportMetric(float64(swhw), "swhw-interactions")
		b.ReportMetric(float64(hwhw), "hwhw-interactions")
	}
}

func BenchmarkTable3Transformations(b *testing.B) {
	w := workspace()
	for i := 0; i < b.N; i++ {
		res, err := experiments.SearchAnatomy(w)
		if err != nil {
			b.Fatal(err)
		}
		excluded := 0
		for _, c := range res.Consensus {
			if c == regress.Excluded {
				excluded++
			}
		}
		b.ReportMetric(float64(excluded), "excluded-vars")
	}
}

func BenchmarkFig7aInterpolation(b *testing.B) {
	w := workspace()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7a(w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Metrics.MedAPE, "medAPE-%")
		b.ReportMetric(res.Metrics.Pearson, "rho")
	}
}

func BenchmarkFig10ShardExtrapolation(b *testing.B) {
	w := workspace()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Overall.Errors.Median, "medAPE-%")
		b.ReportMetric(res.Overall.Metrics.Spearman, "spearman")
	}
}

func BenchmarkFig7bVariantExtrapolation(b *testing.B) {
	w := workspace()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7b(w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Accuracy.Metrics.MedAPE, "medAPE-%")
		b.ReportMetric(res.Accuracy.Metrics.Pearson, "rho")
		b.ReportMetric(100*res.OptEffectMean, "opt-effect-mean-%")
	}
}

func BenchmarkFig7cNewAppExtrapolation(b *testing.B) {
	w := workspace()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7c(w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Overall.Metrics.MedAPE, "medAPE-%")
		b.ReportMetric(res.Overall.Metrics.Pearson, "rho")
		b.ReportMetric(float64(res.Updated), "updates-triggered")
	}
}

func BenchmarkFig9OutlierAnalysis(b *testing.B) {
	w := workspace()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig9(w)
		b.ReportMetric(res.MaxAbsDelta("bwaves"), "bwaves-max-delta")
		b.ReportMetric(res.MaxAbsDelta("sjeng"), "sjeng-max-delta")
		b.ReportMetric(float64(res.BwavesModes), "bwaves-cpi-modes")
	}
}

func BenchmarkGeneticParallelSpeedup(b *testing.B) {
	w := workspace()
	for i := 0; i < b.N; i++ {
		res := experiments.ParTime(w, []int{1, 4})
		b.ReportMetric(res.Speedup, "speedup")
	}
}

func BenchmarkProfilingCostReduction(b *testing.B) {
	w := workspace()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Costs(w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Reduction, "reduction-x")
		b.ReportMetric(res.ExtrapolationReduction, "extrapolation-reduction-x")
	}
}

func BenchmarkManualVsAutomated(b *testing.B) {
	w := workspace()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Manual(w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Improvement, "improvement-%")
	}
}

func BenchmarkFig12BlockingTopology(b *testing.B) {
	w := workspace()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12(w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.BestRow), "best-brow")
		b.ReportMetric(res.ByRow[7]/res.ByRow[0], "brow8-vs-1")
	}
}

func BenchmarkFig13CacheTrends(b *testing.B) {
	w := workspace()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig13(w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.LineGain, "line-16-to-128-gain")
	}
}

func BenchmarkFig14SpmvAccuracy(b *testing.B) {
	w := workspace()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig14(w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.MedianPerfErr, "perf-medAPE-%")
		b.ReportMetric(100*res.MedianPowerErr, "power-medAPE-%")
	}
}

func BenchmarkFig15Topology(b *testing.B) {
	w := workspace()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig15(w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Correlation, "cell-correlation")
	}
}

func BenchmarkFig16CoordinatedTuning(b *testing.B) {
	w := workspace()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig16(w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanApp, "app-speedup")
		b.ReportMetric(res.MeanArch, "arch-speedup")
		b.ReportMetric(res.MeanCoord, "coord-speedup")
		b.ReportMetric(res.MeanCoordNJ/res.MeanBaseNJ, "coord-energy-ratio")
	}
}

// --- ablations ---------------------------------------------------------------

func benchAblation(b *testing.B, f func(*experiments.Workspace) (experiments.AblationResult, error)) {
	b.Helper()
	w := workspace()
	for i := 0; i < b.N; i++ {
		res, err := f(w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Benefit(), "benefit-x")
	}
}

func BenchmarkAblationVarianceStabilization(b *testing.B) {
	benchAblation(b, experiments.AblationStabilization)
}

func BenchmarkAblationInteractions(b *testing.B) {
	benchAblation(b, experiments.AblationInteractions)
}

func BenchmarkAblationSharding(b *testing.B) {
	benchAblation(b, experiments.AblationSharding)
}

func BenchmarkAblationStepwise(b *testing.B) {
	benchAblation(b, experiments.AblationStepwise)
}

func BenchmarkAblationDomainSpecific(b *testing.B) {
	benchAblation(b, experiments.AblationDomainSpecific)
}

func BenchmarkAblationLogResponse(b *testing.B) {
	benchAblation(b, experiments.AblationLogResponse)
}

// --- substrate microbenchmarks ----------------------------------------------

func BenchmarkTraceGeneration(b *testing.B) {
	app := trace.Bzip2()
	var in isa.Inst
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := app.ShardStream(i%32, 10_000)
		for st.Next(&in) {
		}
	}
	b.ReportMetric(10_000, "insts/op")
}

func BenchmarkCPUSimulation(b *testing.B) {
	app := trace.Bzip2()
	insts := isa.Collect(app.ShardStream(0, 10_000), 0)
	sim := cpu.New(hwspace.Baseline())
	ss := &isa.SliceStream{Insts: insts}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ss.Reset()
		sim.Run(ss)
	}
	b.ReportMetric(10_000, "insts/op")
}

func BenchmarkShardProfiling(b *testing.B) {
	app := trace.Hmmer()
	insts := isa.Collect(app.ShardStream(0, 10_000), 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ss := &isa.SliceStream{Insts: insts}
		profile.Stream(ss, "bench", 0)
	}
}

func BenchmarkRegressionFit(b *testing.B) {
	w := workspace()
	ds := core.ToDataset(w.TrainingSamples())
	prep := regress.Prepare(ds, true)
	spec := regress.Spec{Codes: make([]regress.TransformCode, core.NumVars)}
	for v := range spec.Codes {
		spec.Codes[v] = regress.Quadratic
	}
	spec.Interactions = []regress.Interaction{{I: 6, J: 17}, {I: 13, J: 14}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := regress.FitSpec(spec, prep, ds, regress.Options{LogResponse: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFeaturizerCache measures the tentpole speedup of the featurize
// layer: assembling design matrices for a stream of varied specifications
// from cached basis columns versus rebuilding the transform pipeline per
// spec (what every genetic fitness evaluation used to pay). The specs are
// generated deterministically and identically in both sub-benchmarks.
func BenchmarkFeaturizerCache(b *testing.B) {
	w := workspace()
	ds := core.ToDataset(w.TrainingSamples())
	specs := make([]regress.Spec, 32)
	src := rng.New(7)
	codes := []regress.TransformCode{
		regress.Excluded, regress.Linear, regress.Quadratic, regress.Cubic, regress.Spline3,
	}
	for s := range specs {
		specs[s].Codes = make([]regress.TransformCode, core.NumVars)
		for v := range specs[s].Codes {
			specs[s].Codes[v] = codes[int(src.Uint64()%uint64(len(codes)))]
		}
		i := int(src.Uint64() % core.NumVars)
		j := int(src.Uint64() % core.NumVars)
		if i != j {
			specs[s].Interactions = []regress.Interaction{{I: min(i, j), J: max(i, j)}}
		}
	}

	b.Run("rebuild", func(b *testing.B) {
		prep := regress.Prepare(ds, true)
		for i := 0; i < b.N; i++ {
			design, _ := prep.Design(specs[i%len(specs)], ds)
			_ = design
		}
	})
	b.Run("cached", func(b *testing.B) {
		fz, err := regress.NewFeaturizer(ds, true)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := fz.Design(specs[i%len(specs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkModelPredict(b *testing.B) {
	w := workspace()
	m, err := w.Model()
	if err != nil {
		b.Fatal(err)
	}
	sample := w.ValidationSamples()[0]
	row := sample.Row()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Model().Predict(row)
	}
}

func BenchmarkQRFactorization(b *testing.B) {
	src := rng.New(1)
	a := linalg.NewMatrix(500, 40)
	for i := range a.Data {
		a.Data[i] = src.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		linalg.Factor(a, 0)
	}
}

func BenchmarkSpMVKernelSimulation(b *testing.B) {
	spec, err := spmv.ByName("nasasrb")
	if err != nil {
		b.Fatal(err)
	}
	study := spmv.NewStudy(spec.Scaled(32))
	cfg := spmv.BaselineCache()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		study.Simulate(3, 3, cfg)
	}
}

func BenchmarkBCSRConversion(b *testing.B) {
	spec, err := spmv.ByName("crystk02")
	if err != nil {
		b.Fatal(err)
	}
	m := spec.Scaled(32).Generate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spmv.ToBCSR(m, 3, 3)
	}
}
