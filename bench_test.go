// Package hsmodel's root benchmark suite regenerates every table and figure
// of the paper (one benchmark per experiment; see DESIGN.md §4 for the
// index) plus microbenchmarks of the substrate layers. Headline numbers are
// attached to each benchmark via ReportMetric:
//
//	go test -bench=. -benchmem
//
// Benchmarks share one Workspace (profiles are collected and the
// steady-state model trained once), so per-benchmark times reflect the
// experiment itself, not data collection.
package hsmodel

import (
	"io"
	"sync"
	"testing"

	"hsmodel/internal/core"
	"hsmodel/internal/cpu"
	"hsmodel/internal/experiments"
	"hsmodel/internal/hwspace"
	"hsmodel/internal/isa"
	"hsmodel/internal/linalg"
	"hsmodel/internal/profile"
	"hsmodel/internal/regress"
	"hsmodel/internal/rng"
	"hsmodel/internal/spmv"
	"hsmodel/internal/trace"
)

var (
	wsOnce sync.Once
	ws     *experiments.Workspace
)

// workspace returns the shared, silently-reporting experiment workspace.
func workspace() *experiments.Workspace {
	wsOnce.Do(func() {
		cfg := experiments.Quick()
		cfg.Out = io.Discard
		ws = experiments.NewWorkspace(cfg)
	})
	return ws
}

// --- paper experiments -----------------------------------------------------

func BenchmarkFig3VarianceStabilization(b *testing.B) {
	w := workspace()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig3(w)
		b.ReportMetric(res.SkewBefore, "skew-before")
		b.ReportMetric(res.SkewAfter, "skew-after")
		b.ReportMetric(1/res.Power, "power-denominator")
	}
}

func BenchmarkFig5Convergence(b *testing.B) {
	w := workspace()
	for i := 0; i < b.N; i++ {
		res, err := experiments.SearchAnatomy(w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.History[0], "gen0-sum-med-err")
		b.ReportMetric(res.History[len(res.History)-1], "final-sum-med-err")
	}
}

func BenchmarkFig4InteractionFrequency(b *testing.B) {
	w := workspace()
	for i := 0; i < b.N; i++ {
		res, err := experiments.SearchAnatomy(w)
		if err != nil {
			b.Fatal(err)
		}
		swsw, swhw, hwhw := res.RegionCounts()
		b.ReportMetric(float64(swsw), "swsw-interactions")
		b.ReportMetric(float64(swhw), "swhw-interactions")
		b.ReportMetric(float64(hwhw), "hwhw-interactions")
	}
}

func BenchmarkTable3Transformations(b *testing.B) {
	w := workspace()
	for i := 0; i < b.N; i++ {
		res, err := experiments.SearchAnatomy(w)
		if err != nil {
			b.Fatal(err)
		}
		excluded := 0
		for _, c := range res.Consensus {
			if c == regress.Excluded {
				excluded++
			}
		}
		b.ReportMetric(float64(excluded), "excluded-vars")
	}
}

func BenchmarkFig7aInterpolation(b *testing.B) {
	w := workspace()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7a(w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Metrics.MedAPE, "medAPE-%")
		b.ReportMetric(res.Metrics.Pearson, "rho")
	}
}

func BenchmarkFig10ShardExtrapolation(b *testing.B) {
	w := workspace()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Overall.Errors.Median, "medAPE-%")
		b.ReportMetric(res.Overall.Metrics.Spearman, "spearman")
	}
}

func BenchmarkFig7bVariantExtrapolation(b *testing.B) {
	w := workspace()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7b(w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Accuracy.Metrics.MedAPE, "medAPE-%")
		b.ReportMetric(res.Accuracy.Metrics.Pearson, "rho")
		b.ReportMetric(100*res.OptEffectMean, "opt-effect-mean-%")
	}
}

func BenchmarkFig7cNewAppExtrapolation(b *testing.B) {
	w := workspace()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7c(w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Overall.Metrics.MedAPE, "medAPE-%")
		b.ReportMetric(res.Overall.Metrics.Pearson, "rho")
		b.ReportMetric(float64(res.Updated), "updates-triggered")
	}
}

func BenchmarkFig9OutlierAnalysis(b *testing.B) {
	w := workspace()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig9(w)
		b.ReportMetric(res.MaxAbsDelta("bwaves"), "bwaves-max-delta")
		b.ReportMetric(res.MaxAbsDelta("sjeng"), "sjeng-max-delta")
		b.ReportMetric(float64(res.BwavesModes), "bwaves-cpi-modes")
	}
}

func BenchmarkGeneticParallelSpeedup(b *testing.B) {
	w := workspace()
	for i := 0; i < b.N; i++ {
		res := experiments.ParTime(w, []int{1, 4})
		b.ReportMetric(res.Speedup, "speedup")
	}
}

func BenchmarkProfilingCostReduction(b *testing.B) {
	w := workspace()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Costs(w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Reduction, "reduction-x")
		b.ReportMetric(res.ExtrapolationReduction, "extrapolation-reduction-x")
	}
}

func BenchmarkManualVsAutomated(b *testing.B) {
	w := workspace()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Manual(w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Improvement, "improvement-%")
	}
}

func BenchmarkFig12BlockingTopology(b *testing.B) {
	w := workspace()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12(w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.BestRow), "best-brow")
		b.ReportMetric(res.ByRow[7]/res.ByRow[0], "brow8-vs-1")
	}
}

func BenchmarkFig13CacheTrends(b *testing.B) {
	w := workspace()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig13(w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.LineGain, "line-16-to-128-gain")
	}
}

func BenchmarkFig14SpmvAccuracy(b *testing.B) {
	w := workspace()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig14(w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.MedianPerfErr, "perf-medAPE-%")
		b.ReportMetric(100*res.MedianPowerErr, "power-medAPE-%")
	}
}

func BenchmarkFig15Topology(b *testing.B) {
	w := workspace()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig15(w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Correlation, "cell-correlation")
	}
}

func BenchmarkFig16CoordinatedTuning(b *testing.B) {
	w := workspace()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig16(w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanApp, "app-speedup")
		b.ReportMetric(res.MeanArch, "arch-speedup")
		b.ReportMetric(res.MeanCoord, "coord-speedup")
		b.ReportMetric(res.MeanCoordNJ/res.MeanBaseNJ, "coord-energy-ratio")
	}
}

// --- ablations ---------------------------------------------------------------

func benchAblation(b *testing.B, f func(*experiments.Workspace) (experiments.AblationResult, error)) {
	b.Helper()
	w := workspace()
	for i := 0; i < b.N; i++ {
		res, err := f(w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Benefit(), "benefit-x")
	}
}

func BenchmarkAblationVarianceStabilization(b *testing.B) {
	benchAblation(b, experiments.AblationStabilization)
}

func BenchmarkAblationInteractions(b *testing.B) {
	benchAblation(b, experiments.AblationInteractions)
}

func BenchmarkAblationSharding(b *testing.B) {
	benchAblation(b, experiments.AblationSharding)
}

func BenchmarkAblationStepwise(b *testing.B) {
	benchAblation(b, experiments.AblationStepwise)
}

func BenchmarkAblationDomainSpecific(b *testing.B) {
	benchAblation(b, experiments.AblationDomainSpecific)
}

func BenchmarkAblationLogResponse(b *testing.B) {
	benchAblation(b, experiments.AblationLogResponse)
}

// --- substrate microbenchmarks ----------------------------------------------

func BenchmarkTraceGeneration(b *testing.B) {
	app := trace.Bzip2()
	var in isa.Inst
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := app.ShardStream(i%32, 10_000)
		for st.Next(&in) {
		}
	}
	b.ReportMetric(10_000, "insts/op")
}

func BenchmarkCPUSimulation(b *testing.B) {
	app := trace.Bzip2()
	insts := isa.Collect(app.ShardStream(0, 10_000), 0)
	sim := cpu.New(hwspace.Baseline())
	ss := &isa.SliceStream{Insts: insts}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ss.Reset()
		sim.Run(ss)
	}
	b.ReportMetric(10_000, "insts/op")
}

func BenchmarkShardProfiling(b *testing.B) {
	app := trace.Hmmer()
	insts := isa.Collect(app.ShardStream(0, 10_000), 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ss := &isa.SliceStream{Insts: insts}
		profile.Stream(ss, "bench", 0)
	}
}

func BenchmarkRegressionFit(b *testing.B) {
	w := workspace()
	ds := core.ToDataset(w.TrainingSamples())
	prep := regress.Prepare(ds, true)
	spec := regress.Spec{Codes: make([]regress.TransformCode, core.NumVars)}
	for v := range spec.Codes {
		spec.Codes[v] = regress.Quadratic
	}
	spec.Interactions = []regress.Interaction{{I: 6, J: 17}, {I: 13, J: 14}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := regress.FitSpec(spec, prep, ds, regress.Options{LogResponse: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFeaturizerCache measures the tentpole speedup of the featurize
// layer: assembling design matrices for a stream of varied specifications
// from cached basis columns versus rebuilding the transform pipeline per
// spec (what every genetic fitness evaluation used to pay). The specs are
// generated deterministically and identically in both sub-benchmarks.
func BenchmarkFeaturizerCache(b *testing.B) {
	w := workspace()
	ds := core.ToDataset(w.TrainingSamples())
	specs := make([]regress.Spec, 32)
	src := rng.New(7)
	codes := []regress.TransformCode{
		regress.Excluded, regress.Linear, regress.Quadratic, regress.Cubic, regress.Spline3,
	}
	for s := range specs {
		specs[s].Codes = make([]regress.TransformCode, core.NumVars)
		for v := range specs[s].Codes {
			specs[s].Codes[v] = codes[int(src.Uint64()%uint64(len(codes)))]
		}
		i := int(src.Uint64() % core.NumVars)
		j := int(src.Uint64() % core.NumVars)
		if i != j {
			specs[s].Interactions = []regress.Interaction{{I: min(i, j), J: max(i, j)}}
		}
	}

	b.Run("rebuild", func(b *testing.B) {
		prep := regress.Prepare(ds, true)
		for i := 0; i < b.N; i++ {
			design, _ := prep.Design(specs[i%len(specs)], ds)
			_ = design
		}
	})
	b.Run("cached", func(b *testing.B) {
		fz, err := regress.NewFeaturizer(ds, true)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := fz.Design(specs[i%len(specs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// gramBenchData synthesizes a GA-scale dataset shaped like the real modeling
// problem: 26 variables of which the first 13 take discrete "hardware" levels
// and the rest are continuous profile characteristics, with evaluator-style
// weights (train rows 2, held-out rows 0) and a strictly positive response.
func gramBenchData(n int) (*regress.Dataset, []float64) {
	src := rng.New(42)
	const p = core.NumVars
	ds := &regress.Dataset{
		Names: make([]string, p),
		X:     linalg.NewMatrix(n, p),
		Y:     make([]float64, n),
	}
	for v := 0; v < p; v++ {
		ds.Names[v] = "v" + string(rune('a'+v%26))
	}
	for i := 0; i < n; i++ {
		row := ds.X.Row(i)
		for v := range row {
			if v < 13 {
				row[v] = float64(1 + src.Intn(8))
			} else {
				row[v] = 0.2 + 3*src.Float64()
			}
		}
		y := 1.0
		for v, x := range row {
			y += 0.05 * float64(v%5) * x
		}
		ds.Y[i] = y * (0.9 + 0.2*src.Float64())
	}
	w := make([]float64, n)
	for i := range w {
		if src.Float64() < 0.7 {
			w[i] = 2
		}
	}
	return ds, w
}

// gramBenchSpecs draws a GA-like candidate population.
func gramBenchSpecs(count, vars int, seed uint64) []regress.Spec {
	src := rng.New(seed)
	specs := make([]regress.Spec, count)
	for s := range specs {
		specs[s].Codes = make([]regress.TransformCode, vars)
		for v := range specs[s].Codes {
			specs[s].Codes[v] = regress.TransformCode(src.Uint64() % uint64(regress.NumTransformCodes))
		}
		for k := int(src.Uint64() % 4); k > 0; k-- {
			i, j := int(src.Uint64()%uint64(vars)), int(src.Uint64()%uint64(vars))
			if i != j {
				specs[s].Interactions = append(specs[s].Interactions,
					regress.Interaction{I: i, J: j}.Canon())
			}
		}
	}
	return specs
}

// BenchmarkGramFitParity fits one candidate per iteration on both the
// Gram/Cholesky path and the pivoted-QR path, reporting the worst coefficient
// divergence observed (the 1e-8 contract) and the share of fits the Gram path
// served directly.
func BenchmarkGramFitParity(b *testing.B) {
	ds, weights := gramBenchData(1200)
	fz, err := regress.NewFeaturizer(ds, true)
	if err != nil {
		b.Fatal(err)
	}
	opts := regress.Options{LogResponse: true, Weights: weights}
	gc, err := regress.NewGramCache(fz, opts)
	if err != nil {
		b.Fatal(err)
	}
	specs := gramBenchSpecs(32, core.NumVars, 17)
	maxDiff := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := specs[i%len(specs)]
		gm, gerr := gc.Fit(spec)
		qm, qerr := fz.Fit(spec, opts)
		if (gerr == nil) != (qerr == nil) {
			b.Fatalf("path disagreement: gram %v, qr %v", gerr, qerr)
		}
		if gerr != nil {
			continue
		}
		for j := range gm.Coef {
			d := gm.Coef[j] - qm.Coef[j]
			if d < 0 {
				d = -d
			}
			rel := d / (1 + absf(qm.Coef[j]))
			if rel > maxDiff && gm.Rank == qm.Rank {
				maxDiff = rel
			}
		}
	}
	b.StopTimer()
	s := gc.Stats()
	b.ReportMetric(maxDiff, "max-coef-reldiff")
	if total := s.GramFits + s.QRFallbacks; total > 0 {
		b.ReportMetric(float64(s.GramFits)/float64(total), "gram-share")
	}
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// BenchmarkGenerationFitness measures the tentpole speedup: one genetic
// generation's worth of candidate fits (32 specs, 1200 rows, 26 variables)
// on the PR 2 featurizer-only QR path versus the Gram-cache path with warm
// cross-products — the steady state of every generation after the first.
func BenchmarkGenerationFitness(b *testing.B) {
	ds, weights := gramBenchData(1200)
	fz, err := regress.NewFeaturizer(ds, true)
	if err != nil {
		b.Fatal(err)
	}
	opts := regress.Options{LogResponse: true, Weights: weights}
	specs := gramBenchSpecs(32, core.NumVars, 17)

	b.Run("featurizer", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, spec := range specs {
				if _, err := fz.Fit(spec, opts); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("gram", func(b *testing.B) {
		gc, err := regress.NewGramCache(fz, opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, spec := range specs { // warm the cross-product memo
			if _, err := gc.Fit(spec); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, spec := range specs {
				if _, err := gc.Fit(spec); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		s := gc.Stats()
		if total := s.GramFits + s.QRFallbacks; total > 0 {
			b.ReportMetric(float64(s.GramFits)/float64(total), "gram-share")
		}
	})
}

// BenchmarkModelPredict measures the serving hot path in scalar and batch
// form with allocation accounting. One warm-up call grows the caller-owned
// scratch to its high-water mark; after that every prediction must report
// 0 allocs/op (the batch form additionally answers all rows in a single
// contiguous matrix-vector sweep).
func BenchmarkModelPredict(b *testing.B) {
	w := workspace()
	m, err := w.Model()
	if err != nil {
		b.Fatal(err)
	}
	model := m.Model()
	samples := w.ValidationSamples()
	rows := make([][]float64, len(samples))
	for i, s := range samples {
		rows[i] = s.Row()
	}

	b.Run("scalar", func(b *testing.B) {
		var scratch regress.PredictScratch
		model.PredictWith(&scratch, rows[0])
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			model.PredictWith(&scratch, rows[i%len(rows)])
		}
	})
	b.Run("batch", func(b *testing.B) {
		var scratch regress.PredictScratch
		out := make([]float64, len(rows))
		model.PredictBatchWith(&scratch, rows, out)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			model.PredictBatchWith(&scratch, rows, out)
		}
		b.ReportMetric(float64(len(rows)), "preds/op")
	})
}

func BenchmarkQRFactorization(b *testing.B) {
	src := rng.New(1)
	a := linalg.NewMatrix(500, 40)
	for i := range a.Data {
		a.Data[i] = src.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		linalg.Factor(a, 0)
	}
}

func BenchmarkSpMVKernelSimulation(b *testing.B) {
	spec, err := spmv.ByName("nasasrb")
	if err != nil {
		b.Fatal(err)
	}
	study := spmv.NewStudy(spec.Scaled(32))
	cfg := spmv.BaselineCache()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		study.Simulate(3, 3, cfg)
	}
}

func BenchmarkBCSRConversion(b *testing.B) {
	spec, err := spmv.ByName("crystk02")
	if err != nil {
		b.Fatal(err)
	}
	m := spec.Scaled(32).Generate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spmv.ToBCSR(m, 3, 3)
	}
}
