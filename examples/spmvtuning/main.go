// SpMV coordinated tuning: the Section 5 case study as a library user would
// run it. For a sparse matrix, sample the integrated SpMV-cache space, train
// performance and power models on the samples, and use the models to tune
// the application (block size), the architecture (cache geometry), and both
// together — reporting the Figure 16 trade-off between speed and energy.
//
//	go run ./examples/spmvtuning [matrix]
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"hsmodel/internal/genetic"
	"hsmodel/internal/spmv"
)

func main() {
	ctx := context.Background()
	name := "raefsky3"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	spec, err := spmv.ByName(name)
	if err != nil {
		log.Fatal(err)
	}
	spec = spec.Scaled(16) // scaled corpus; Scaled(1) is the published size
	fmt.Printf("matrix %s: %dx%d, %d non-zeros\n", spec.Name, spec.N, spec.N, spec.NNZ)

	study := spmv.NewStudy(spec)
	fmt.Println("sampling 300 (block size, cache) points and training models...")
	points := study.Sample(300, 7)
	models, err := spmv.TrainModels(ctx, spec.Name, points, spmv.TrainOptions{
		Search: genetic.Params{PopulationSize: 24, Generations: 10, Seed: 9},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Validate before trusting the models for tuning.
	valid := study.Sample(80, 1007)
	fmt.Printf("  performance model: %v\n", spmv.EvaluateDomainModel(models.Perf, valid))
	fmt.Printf("  power model:       %v\n", spmv.EvaluateDomainModel(models.Power, valid))

	res := spmv.Tune(spmv.TuneOptions{
		Study:           study,
		Models:          &models,
		CacheCandidates: 150,
		Seed:            5,
	})
	fmt.Printf("\nbaseline (1x1 blocks, %s):\n  %.0f Mflop/s, %.1f nJ/Flop\n",
		spmv.BaselineCache(), res.Baseline.MFlops, res.Baseline.NJFlop)
	fmt.Printf("application tuning (best block %dx%d):\n  %.2fx speedup, %.1f nJ/Flop\n",
		res.AppTuned.R, res.AppTuned.C, res.AppSpeedup(), res.AppTuned.NJFlop)
	fmt.Printf("architecture tuning (%s):\n  %.2fx speedup, %.1f nJ/Flop\n",
		res.ArchTuned.Cfg, res.ArchSpeedup(), res.ArchTuned.NJFlop)
	fmt.Printf("coordinated tuning (block %dx%d on %s):\n  %.2fx speedup, %.1f nJ/Flop\n",
		res.Coordinated.R, res.Coordinated.C, res.Coordinated.Cfg,
		res.CoordSpeedup(), res.Coordinated.NJFlop)

	switch {
	case res.Coordinated.NJFlop <= res.Baseline.NJFlop:
		fmt.Println("\ncoordinated tuning raised performance AND cut energy per flop —")
		fmt.Println("architects cannot afford to ignore application tuning (Section 5.3).")
	default:
		fmt.Println("\ncoordinated tuning traded energy for performance on this matrix.")
	}
}
