// Quickstart: collect sparse hardware-software profiles, train an inferred
// performance model with the genetic heuristic, and predict the performance
// of an unseen (shard, architecture) pair — all through the public
// pkg/hsmodel facade.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"hsmodel/internal/trace"
	"hsmodel/pkg/hsmodel"
)

func main() {
	ctx := context.Background()
	// 1. Workloads: the seven SPEC2006 stand-ins.
	apps := trace.SPEC2006()

	// 2. Sparse profiling: 80 random (shard, architecture) pairs per
	//    application — a small fraction of the integrated space.
	collector := &hsmodel.Collector{ShardLen: 50_000, ShardPool: 40}
	fmt.Println("collecting sparse profiles (7 apps x 80 pairs)...")
	samples := collector.Collect(apps, 80, 42)

	// 3. Automated modeling: the genetic search chooses variables,
	//    transformations, and interactions.
	modeler := hsmodel.New(samples,
		hsmodel.WithSeed(7),
		hsmodel.WithPopulation(30),
		hsmodel.WithGenerations(8),
	)
	fmt.Println("training (genetic search over model specifications)...")
	if err := modeler.Train(ctx); err != nil {
		log.Fatal(err)
	}
	best := modeler.Population()[0]
	fmt.Printf("converged: fitness %.3f, spec %s\n\n", best.Fitness, best.Spec)

	// 4. Predict an unseen pair and check it against simulation.
	hw := hsmodel.RandomConfig(99)
	unseen := collector.Collect(apps[0:1], 1, 1234)[0]
	pred, err := modeler.PredictShard(unseen.X, hw)
	if err != nil {
		log.Fatal(err)
	}
	truth := collector.CollectPairs(apps, []int{0}, []int{unseen.Shard}, []hsmodel.Config{hw})[0].CPI
	fmt.Printf("astar shard %d on %s\n", unseen.Shard, hw)
	fmt.Printf("  predicted CPI %.3f, simulated CPI %.3f (error %.1f%%)\n",
		pred, truth, 100*abs(pred-truth)/truth)

	// 5. Whole-application prediction aggregates shard predictions.
	var shards []hsmodel.Sample
	for s := 0; s < 10; s++ {
		shards = append(shards, collector.CollectPairs(apps, []int{2}, []int{s}, []hsmodel.Config{hw})[0])
	}
	var xs []hsmodel.Characteristics
	var truthSum float64
	for _, s := range shards {
		xs = append(xs, s.X)
		truthSum += s.CPI
	}
	appPred, err := modeler.PredictApplication(xs, hw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bzip2 (10 shards) on the same machine\n")
	fmt.Printf("  predicted CPI %.3f, simulated CPI %.3f (error %.1f%%)\n",
		appPred, truthSum/10, 100*abs(appPred-truthSum/10)/(truthSum/10))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
