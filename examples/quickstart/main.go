// Quickstart: collect sparse hardware-software profiles, train an inferred
// performance model with the genetic heuristic, and predict the performance
// of an unseen (shard, architecture) pair.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"hsmodel/internal/core"
	"hsmodel/internal/genetic"
	"hsmodel/internal/hwspace"
	"hsmodel/internal/profile"
	"hsmodel/internal/rng"
	"hsmodel/internal/trace"
)

func main() {
	ctx := context.Background()
	// 1. Workloads: the seven SPEC2006 stand-ins.
	apps := trace.SPEC2006()

	// 2. Sparse profiling: 80 random (shard, architecture) pairs per
	//    application — a small fraction of the integrated space.
	collector := &core.Collector{ShardLen: 50_000, ShardPool: 40}
	fmt.Println("collecting sparse profiles (7 apps x 80 pairs)...")
	samples := collector.Collect(apps, 80, 42)

	// 3. Automated modeling: the genetic search chooses variables,
	//    transformations, and interactions.
	modeler := core.NewTrainer(samples)
	modeler.Search = genetic.Params{PopulationSize: 30, Generations: 8, Seed: 7}
	fmt.Println("training (genetic search over model specifications)...")
	if err := modeler.Train(ctx); err != nil {
		log.Fatal(err)
	}
	best := modeler.Population()[0]
	fmt.Printf("converged: fitness %.3f, spec %s\n\n", best.Fitness, best.Spec)

	// 4. Predict an unseen pair and check it against simulation.
	src := rng.New(99)
	hw := hwspace.FromIndices(hwspace.Sample(src))
	unseen := collector.Collect(apps[0:1], 1, 1234)[0]
	pred, err := modeler.PredictShard(unseen.X, hw)
	if err != nil {
		log.Fatal(err)
	}
	truth := collector.CollectPairs(apps, []int{0}, []int{unseen.Shard}, []hwspace.Config{hw})[0].CPI
	fmt.Printf("astar shard %d on %s\n", unseen.Shard, hw)
	fmt.Printf("  predicted CPI %.3f, simulated CPI %.3f (error %.1f%%)\n",
		pred, truth, 100*abs(pred-truth)/truth)

	// 5. Whole-application prediction aggregates shard predictions.
	var shards []core.Sample
	for s := 0; s < 10; s++ {
		shards = append(shards, collector.CollectPairs(apps, []int{2}, []int{s}, []hwspace.Config{hw})[0])
	}
	var xs []profile.Characteristics
	var truthSum float64
	for _, s := range shards {
		xs = append(xs, s.X)
		truthSum += s.CPI
	}
	appPred, err := modeler.PredictApplication(xs, hw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bzip2 (10 shards) on the same machine\n")
	fmt.Printf("  predicted CPI %.3f, simulated CPI %.3f (error %.1f%%)\n",
		appPred, truthSum/10, 100*abs(appPred-truthSum/10)/(truthSum/10))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
