// Datacenter allocation: the paper's Section 1 motivation made concrete.
//
// A heterogeneous cluster mixes big, medium, and little node types. Jobs
// arrive with only their portable software profiles attached (collected once
// on any machine, Google-wide-Profiler style). An inferred hardware-software
// model predicts each (job, node type) pairing's performance, and the
// scheduler assigns jobs to the node type that minimizes predicted CPI
// under per-type capacity limits.
//
// The example quantifies the data-to-decision link: model-guided placement
// is compared against random placement and against an oracle that simulates
// every pairing.
//
//	go run ./examples/datacenter
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"hsmodel/internal/core"
	"hsmodel/internal/genetic"
	"hsmodel/internal/hwspace"
	"hsmodel/internal/rng"
	"hsmodel/internal/trace"
)

// nodeType is a hardware flavor available in the cluster.
type nodeType struct {
	name     string
	cfg      hwspace.Config
	capacity int // how many jobs this type can host
}

func main() {
	ctx := context.Background()
	// Cluster: three node flavors from the Table 2 space.
	nodes := []nodeType{
		{"big", hwspace.FromIndices(hwspace.Indices{3, 5, 2, 4, 3, 3, 4, 0, 3, 1, 2, 1, 3}), 5},
		{"medium", hwspace.Baseline(), 7},
		{"little", hwspace.FromIndices(hwspace.Indices{1, 1, 1, 1, 0, 0, 1, 3, 0, 0, 0, 0, 0}), 9},
	}

	// Train the shared model from sparse historical profiles.
	apps := trace.SPEC2006()
	col := &core.Collector{ShardLen: 50_000, ShardPool: 40}
	fmt.Println("bootstrapping model from historical profiles...")
	m := core.NewTrainer(col.Collect(apps, 100, 11))
	m.Search = genetic.Params{PopulationSize: 30, Generations: 8, Seed: 3}
	if err := m.Train(ctx); err != nil {
		log.Fatal(err)
	}

	// Job queue: 21 jobs drawn from the applications, each represented only
	// by a shard profile (its observed behavior).
	src := rng.New(17)
	type job struct {
		name  string
		appID int
		shard int
		x     [13]float64
	}
	var jobs []job
	for k := 0; k < 21; k++ {
		id := src.Intn(len(apps))
		shard := src.Intn(40)
		s := col.CollectPairs(apps, []int{id}, []int{shard},
			[]hwspace.Config{hwspace.Baseline()})[0]
		jobs = append(jobs, job{fmt.Sprintf("%s#%d", apps[id].Name, k), id, shard, s.X})
	}

	// measure returns the simulated CPI of a placement (ground truth).
	measure := func(j job, n nodeType) float64 {
		return col.CollectPairs(apps, []int{j.appID}, []int{j.shard},
			[]hwspace.Config{n.cfg})[0].CPI
	}

	// Model-guided placement: greedily assign each job to the node type
	// with the lowest predicted CPI that still has capacity. Jobs with the
	// most to gain from big nodes (largest predicted spread) pick first.
	type pref struct {
		j      job
		pred   []float64
		spread float64
	}
	prefs := make([]pref, len(jobs))
	for i, j := range jobs {
		p := pref{j: j, pred: make([]float64, len(nodes))}
		for k, n := range nodes {
			v, err := m.PredictShard(j.x, n.cfg)
			if err != nil {
				log.Fatal(err)
			}
			p.pred[k] = v
		}
		p.spread = p.pred[2] - p.pred[0]
		prefs[i] = p
	}
	sort.Slice(prefs, func(a, b int) bool { return prefs[a].spread > prefs[b].spread })

	used := make([]int, len(nodes))
	var modelCPI, randomCPI, oracleCPI float64
	fmt.Println("\nplacements (model-guided):")
	for _, p := range prefs {
		// Pick the best predicted node with free capacity.
		best := -1
		for k := range nodes {
			if used[k] >= nodes[k].capacity {
				continue
			}
			if best < 0 || p.pred[k] < p.pred[best] {
				best = k
			}
		}
		used[best]++
		actual := measure(p.j, nodes[best])
		modelCPI += actual
		fmt.Printf("  %-12s -> %-6s predicted %.2f, actual %.2f\n",
			p.j.name, nodes[best].name, p.pred[best], actual)

		// Random baseline: a random capacity-respecting assignment places
		// this job on type k with probability capacity_k / total slots.
		var r, slots float64
		for k, n := range nodes {
			r += float64(nodes[k].capacity) * measure(p.j, n)
			slots += float64(nodes[k].capacity)
		}
		randomCPI += r / slots

		// Oracle: simulate all three, take the best (no capacity limits —
		// an unreachable lower bound).
		o := measure(p.j, nodes[0])
		for _, n := range nodes[1:] {
			if v := measure(p.j, n); v < o {
				o = v
			}
		}
		oracleCPI += o
	}

	n := float64(len(jobs))
	fmt.Printf("\nmean CPI: model-guided %.3f | random %.3f | oracle (no capacity) %.3f\n",
		modelCPI/n, randomCPI/n, oracleCPI/n)
	fmt.Printf("model-guided placement improves on random by %.1f%%\n",
		100*(randomCPI-modelCPI)/randomCPI)
}
