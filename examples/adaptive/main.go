// Adaptive architecture: the paper's reconfigurable-chip motivation.
//
// A core can reconfigure between power-of-two operating points (window
// size, cache allocation, functional units) at phase granularity. As an
// application runs, each shard is profiled and the inferred model picks the
// configuration with the best predicted performance before the shard
// executes — the run-time decision loop the paper's models are meant to
// close ("control mechanisms for reconfigurable architectures").
//
// The example also exercises the Section 3.2-3.3 update protocol: the model
// is bootstrapped WITHOUT gemsFDTD; when gemsFDTD shows up, its first
// profiles check poorly, more profiles accrue, and the model re-specifies.
//
//	go run ./examples/adaptive
package main

import (
	"context"
	"fmt"
	"log"

	"hsmodel/internal/trace"
	"hsmodel/pkg/hsmodel"
)

func main() {
	ctx := context.Background()
	// The reconfigurable core's operating points.
	points := map[string]hsmodel.Config{
		"throughput":  hsmodel.ConfigFromIndices(hsmodel.Indices{3, 4, 1, 3, 2, 2, 3, 1, 3, 1, 2, 1, 3}),
		"balanced":    hsmodel.Baseline(),
		"cache-heavy": hsmodel.ConfigFromIndices(hsmodel.Indices{2, 2, 3, 2, 3, 3, 4, 0, 1, 0, 1, 0, 1}),
		"narrow-eco":  hsmodel.ConfigFromIndices(hsmodel.Indices{0, 0, 1, 1, 1, 1, 1, 2, 0, 0, 0, 0, 0}),
	}

	// Bootstrap the model from six applications (gemsFDTD withheld).
	apps := trace.SPEC2006()
	var boot []*trace.App
	gemsID := -1
	for i, a := range apps {
		if a.Name == "gemsFDTD" {
			gemsID = i
			continue
		}
		boot = append(boot, a)
	}
	col := &hsmodel.Collector{ShardLen: 50_000, ShardPool: 40}
	fmt.Println("bootstrapping model without gemsFDTD...")
	m := hsmodel.New(col.Collect(boot, 90, 5),
		hsmodel.WithSeed(21),
		hsmodel.WithPopulation(28),
		hsmodel.WithGenerations(8),
	)
	if err := m.Train(ctx); err != nil {
		log.Fatal(err)
	}

	// gemsFDTD arrives. Run 14 shards: for each, profile, consult the
	// model for the best operating point, and compare against the static
	// balanced configuration.
	fmt.Println("\ngemsFDTD arrives; adapting per shard:")
	var adaptiveCycles, staticCycles float64
	var accrued []hsmodel.Sample
	for shard := 0; shard < 14; shard++ {
		x := col.CollectPairs(apps, []int{gemsID}, []int{shard},
			[]hsmodel.Config{hsmodel.Baseline()})[0].X

		bestName, bestPred := "", 0.0
		for name, cfg := range points {
			pred, err := m.PredictShard(x, cfg)
			if err != nil {
				log.Fatal(err)
			}
			if bestName == "" || pred < bestPred {
				bestName, bestPred = name, pred
			}
		}
		chosen := col.CollectPairs(apps, []int{gemsID}, []int{shard},
			[]hsmodel.Config{points[bestName]})[0]
		static := col.CollectPairs(apps, []int{gemsID}, []int{shard},
			[]hsmodel.Config{points["balanced"]})[0]
		adaptiveCycles += chosen.CPI
		staticCycles += static.CPI
		fmt.Printf("  shard %2d -> %-11s predicted %.2f, actual %.2f (static %.2f)\n",
			shard, bestName, bestPred, chosen.CPI, static.CPI)

		// Feed the observation back; the update protocol decides when to
		// re-specify (10+ accrued profiles and still inaccurate).
		accrued = append(accrued, chosen)
		if len(accrued) == 12 {
			d, err := m.Perturb(ctx, accrued, hsmodel.UpdatePolicy{ErrThreshold: 0.08, MinProfiles: 10})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  [update protocol after 12 profiles: %v]\n", d)
		}
	}
	fmt.Printf("\nmean CPI: adaptive %.3f vs static-balanced %.3f (%.1f%% better)\n",
		adaptiveCycles/14, staticCycles/14,
		100*(staticCycles-adaptiveCycles)/staticCycles)
}
