module hsmodel

go 1.22
