GO ?= go

.PHONY: build vet test race lint lint-fix lint-sarif bench-smoke serve-smoke serve-bench families-smoke registry-smoke ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint builds and runs hslint, the repo's own static analyzer (cmd/hslint):
# lock ordering, snapshot immutability, search determinism, sentinel-error
# matching, float comparison discipline, context propagation, goroutine
# lifecycle, atomic publication, and bounded container growth. Findings
# recorded in .hslint-baseline.json are grandfathered (reported, not fatal);
# fresh diagnostics exit non-zero. Suppressions use
# //hslint:ignore <check> <reason>. The stamp file makes repeated `make lint`
# free when no Go source or the baseline changed.
GO_SOURCES := $(shell find . -name '*.go' -not -path './.git/*')

lint: .hslint.stamp

.hslint.stamp: $(GO_SOURCES) .hslint-baseline.json
	$(GO) build -o hslint ./cmd/hslint
	./hslint -baseline .hslint-baseline.json ./...
	touch $@

# lint-fix applies every suggested fix (errors.Is rewrites, %w wraps, stale
# ignore-directive deletion) in place; run lint afterwards to verify.
lint-fix:
	$(GO) build -o hslint ./cmd/hslint
	./hslint -fix ./...

# lint-sarif writes SARIF 2.1.0 to hslint.sarif for CI code-scanning
# annotations, preserving hslint's exit status (baselined findings pass).
lint-sarif:
	$(GO) build -o hslint ./cmd/hslint
	./hslint -format sarif -baseline .hslint-baseline.json ./... > hslint.sarif

# bench-smoke runs every benchmark exactly once: it proves the full
# experiment suite (all figures and ablations) still executes end to end
# without paying for statistically meaningful timings.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x ./...

# serve-smoke boots the hsserve HTTP service on a random loopback port,
# drives one predict, one coalescing batch, a samples POST, and a metrics
# scrape through a real client, and exits non-zero on any mismatch. It then
# replays a scripted drift episode through the continuous-learning loop
# (faultinject schedule, fixed seeds) and fails unless exactly one promotion
# and one rollback occur.
serve-smoke:
	$(GO) run ./cmd/hsserve -selfcheck
	$(GO) run ./cmd/hsserve -driftcheck

# serve-bench measures the serving path: it boots a bootstrap-trained hsserve
# on a loopback port, drives it with cmd/hsload (concurrent single predicts —
# the unbatched seed wire shape — then multi-item batch posts answered in
# contiguous PredictBatch sweeps), and writes BENCH_pr8.json with throughput,
# p50/p99/p999 latency, and the batch-vs-single speedup. The server is always
# torn down, even when the load run fails.
serve-bench:
	$(GO) build -o hsserve-bench ./cmd/hsserve
	$(GO) build -o hsload ./cmd/hsload
	./hsserve-bench -addr 127.0.0.1:18808 -bootstrap -apps 3 -samples 40 -pop 8 -gens 2 -seed 7 -shardlen 20000 & \
	SRV=$$!; \
	for i in $$(seq 1 120); do curl -sf http://127.0.0.1:18808/healthz >/dev/null 2>&1 && break; sleep 1; done; \
	./hsload -addr http://127.0.0.1:18808 -duration 3s -conc 8 -out BENCH_pr8.json; RC=$$?; \
	kill $$SRV; wait $$SRV 2>/dev/null; exit $$RC

# registry-smoke boots hsserve with a three-entry model manifest (two
# application-scoped entries plus a wildcard) next to the default, fans one
# sample stream through /v1/samples verifying each entry's store advances by
# exactly its matching share, trains every manifest entry through its
# model-addressed /v2 samples route, pins v1<->v2 predict bit-identity on the
# default, exercises register/unregister with manifest persistence, and
# checks the per-model metrics series. Exits non-zero on any mismatch.
registry-smoke:
	$(GO) run ./cmd/hsserve -registrycheck

# families-smoke runs the model-family selection harness end to end on the
# spmv domain corpus: all three built-in families (spline, residual, dal)
# must fit, selection must complete with a full scoreboard, and the chosen
# family's CV MedAPE must not be worse than the reference spline baseline.
families-smoke:
	$(GO) test -run TestFamiliesSmoke -v ./internal/core

# ci is the gate: compile, static analysis (go vet plus the repo's own
# hslint invariant checks), plain tests, then the race detector over the
# whole tree (the parallel fitness pool, the lock-free snapshot swaps, and
# the fault-injection schedules are the usual suspects), and finally the
# end-to-end serving, registry, and family-selection smoke tests.
ci: build vet lint test race serve-smoke registry-smoke families-smoke
