GO ?= go

.PHONY: build vet test race lint bench-smoke serve-smoke families-smoke ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint builds and runs hslint, the repo's own static analyzer (cmd/hslint):
# lock ordering, snapshot immutability, search determinism, sentinel-error
# matching, float comparison discipline, and context propagation. Exits
# non-zero on any diagnostic; suppressions use //hslint:ignore <check> <reason>.
lint:
	$(GO) build -o hslint ./cmd/hslint
	./hslint ./...

# bench-smoke runs every benchmark exactly once: it proves the full
# experiment suite (all figures and ablations) still executes end to end
# without paying for statistically meaningful timings.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x ./...

# serve-smoke boots the hsserve HTTP service on a random loopback port,
# drives one predict, one coalescing batch, a samples POST, and a metrics
# scrape through a real client, and exits non-zero on any mismatch. It then
# replays a scripted drift episode through the continuous-learning loop
# (faultinject schedule, fixed seeds) and fails unless exactly one promotion
# and one rollback occur.
serve-smoke:
	$(GO) run ./cmd/hsserve -selfcheck
	$(GO) run ./cmd/hsserve -driftcheck

# families-smoke runs the model-family selection harness end to end on the
# spmv domain corpus: all three built-in families (spline, residual, dal)
# must fit, selection must complete with a full scoreboard, and the chosen
# family's CV MedAPE must not be worse than the reference spline baseline.
families-smoke:
	$(GO) test -run TestFamiliesSmoke -v ./internal/core

# ci is the gate: compile, static analysis (go vet plus the repo's own
# hslint invariant checks), plain tests, then the race detector over the
# whole tree (the parallel fitness pool, the lock-free snapshot swaps, and
# the fault-injection schedules are the usual suspects), and finally the
# end-to-end serving and family-selection smoke tests.
ci: build vet lint test race serve-smoke families-smoke
