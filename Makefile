GO ?= go

.PHONY: build vet test race ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# ci is the gate: compile, static analysis, plain tests, then the race
# detector over the whole tree (the parallel fitness pool and the
# fault-injection schedules are the usual suspects).
ci: build vet test race
