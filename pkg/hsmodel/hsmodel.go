// Package hsmodel is the public API of the inferred hardware-software
// performance modeling system — the one import path external consumers need.
//
// It re-exports the stable surface of the internal engine (profiles, the
// hardware design space, the trainer, immutable served snapshots, metrics,
// and the update protocol) as type aliases, so values flow freely between
// the facade and the serving layer, and replaces struct-field configuration
// with functional options:
//
//	samples := collector.Collect(apps, 120, 1)
//	m := hsmodel.New(samples,
//	    hsmodel.WithSeed(7),
//	    hsmodel.WithGenerations(12),
//	    hsmodel.WithPopulation(36),
//	)
//	if err := m.Train(ctx); err != nil { ... }
//	cpi, err := m.PredictShard(x, hsmodel.Baseline())
//
// The wire schema spoken by the hsserve HTTP service and the hsinfer CLI
// lives in wire.go; everything here is process-local API.
package hsmodel

import (
	"hsmodel/internal/core"
	"hsmodel/internal/family"
	"hsmodel/internal/genetic"
	"hsmodel/internal/hwspace"
	"hsmodel/internal/lifecycle"
	"hsmodel/internal/profile"
	"hsmodel/internal/registry"
	"hsmodel/internal/regress"
	"hsmodel/internal/rng"
)

// Core modeling types, aliased so facade and internal values interchange.
type (
	// Trainer owns the sparse profile store and the training machinery; it
	// publishes immutable Snapshots and answers lock-free predictions. See
	// the type's method set for the full contract (AddSamples and
	// predictions are safe concurrently with an in-flight Train/Update).
	Trainer = core.Trainer
	// Snapshot is an immutable fitted model: the unit of serving and of
	// persistence (Save/LoadSnapshot).
	Snapshot = core.Snapshot
	// Sample is one sparse profile: shard characteristics, the architecture
	// it ran on, and the measured CPI.
	Sample = core.Sample
	// Characteristics holds the thirteen Table 1 software measures.
	Characteristics = profile.Characteristics
	// Config is one fully specified microarchitecture (Table 2).
	Config = hwspace.Config
	// Indices locates a Config as per-parameter discrete level indices.
	Indices = hwspace.Indices
	// Collector produces sparse profiles by simulating shards on sampled
	// architectures.
	Collector = core.Collector
	// FitnessConfig tunes the per-application fitness splits (Section 3.3).
	FitnessConfig = core.FitnessConfig
	// SearchParams configures the genetic model search.
	SearchParams = genetic.Params
	// GenStats summarizes one search generation (Figure 5 convergence).
	GenStats = genetic.GenStats
	// Metrics summarizes predictive accuracy the way the paper reports it.
	Metrics = regress.Metrics
	// UpdatePolicy governs the inductive update protocol (Sections 3.2-3.3).
	UpdatePolicy = core.UpdatePolicy
	// Decision reports what the update protocol concluded.
	Decision = core.Decision
	// Resilience configures the degradation ladder of TrainResilient.
	Resilience = core.Resilience
	// TrainReport records which ladder rung produced the served model.
	TrainReport = core.TrainReport
	// Rung identifies a degradation-ladder level.
	Rung = core.Rung
	// Lifecycle is the continuous-learning control loop: it watches submitted
	// profiles for drift, keeps bounded sample stores, retrains in shadow, and
	// promotes or rolls back candidates against the served snapshot.
	Lifecycle = lifecycle.Controller
	// LifecycleConfig tunes the control loop; see NewLifecycle and the
	// WithDrift*/WithMinProfiles/WithCanaryTolerance option family.
	LifecycleConfig = lifecycle.Config
	// LifecycleStatus is the loop's observable state (also the JSON body of
	// hsserve's GET /v1/lifecycle).
	LifecycleStatus = lifecycle.Status
	// DriftConfig tunes the EWMA+CUSUM drift detector.
	DriftConfig = lifecycle.DriftConfig
	// ModelFamily is one pluggable fitting strategy (Fit/Load); the engine
	// ships spline (the paper's reference), residual, and dal — see
	// DefaultFamilies and WithFamilies.
	ModelFamily = family.Family
	// FamilyModel is a fitted model of one family: the self-contained
	// predictor a Snapshot serves.
	FamilyModel = family.Model
	// FamilyDescription is the displayable summary of a fitted family model.
	FamilyDescription = family.Description
	// SelectionResult records one family-selection round: per-family scores,
	// per-family fit errors, and the winner.
	SelectionResult = core.SelectionResult
	// Registry is the multi-model serving core: named entries — each with
	// its own trainer, snapshot, batcher, and optional lifecycle — behind
	// consistent-hash routing, shared-profile fan-out, and registry-wide
	// load shedding. hsserve builds one per server; in-process embedders
	// build their own with NewRegistry.
	Registry = registry.Registry
	// RegistryEntry is one registered model inside a Registry.
	RegistryEntry = registry.Entry
	// RegistrySpec declares one entry (the in-process form of the wire
	// RegisterRequest and of one manifest element).
	RegistrySpec = registry.Spec
	// RegistryConfig tunes a Registry (ring seed, aggregate queue bound,
	// eval-cache LRU budget).
	RegistryConfig = registry.Config
)

// Dimensions of the integrated space.
const (
	// NumVars is the integrated variable count (13 software + 13 hardware).
	NumVars = core.NumVars
	// NumCharacteristics is the number of Table 1 software characteristics.
	NumCharacteristics = profile.NumCharacteristics
	// NumHWParams is the number of Table 2 hardware parameters.
	NumHWParams = hwspace.NumParams
	// DefaultShardLen is the default profiling shard length in instructions.
	DefaultShardLen = core.DefaultShardLen
)

// Degradation-ladder rungs.
const (
	RungNone     = core.RungNone
	RungGenetic  = core.RungGenetic
	RungStepwise = core.RungStepwise
	RungLastGood = core.RungLastGood
	RungFamily   = core.RungFamily
)

// Sentinel errors callers branch on with errors.Is.
var (
	// ErrNotTrained is returned by predictions before any model is served.
	ErrNotTrained = core.ErrNotTrained
	// ErrNoSamples is returned by Train with an empty profile store.
	ErrNoSamples = core.ErrNoSamples
	// Persistence failure modes of LoadSnapshot.
	ErrModelCorrupt    = core.ErrModelCorrupt
	ErrModelVersion    = core.ErrModelVersion
	ErrModelIncomplete = core.ErrModelIncomplete
	ErrModelShape      = core.ErrModelShape
	ErrModelChecksum   = core.ErrModelChecksum
	ErrModelFamily     = core.ErrModelFamily
	// ErrAllFamiliesFailed is returned by a selection round in which no
	// registered family produced a model.
	ErrAllFamiliesFailed = core.ErrAllFamiliesFailed
	// Registry failure modes (errors.Is-matchable through the wire only via
	// StatusError codes; in-process via these sentinels).
	ErrModelNotFound    = registry.ErrNotFound
	ErrModelExists      = registry.ErrExists
	ErrRegistryClosed   = registry.ErrClosed
	ErrRegistryOverload = registry.ErrOverloaded
)

// Option configures a Trainer at construction; see New.
type Option func(*Trainer)

// New builds a trainer over an initial (possibly empty) profile store with
// the paper's defaults, then applies options. It replaces direct mutation of
// the trainer's configuration fields.
func New(samples []Sample, opts ...Option) *Trainer {
	t := core.NewTrainer(samples)
	for _, o := range opts {
		o(t)
	}
	return t
}

// WithFitness overrides the per-application fitness configuration (training
// fraction, weight, parsimony penalty, split seed).
func WithFitness(fc FitnessConfig) Option {
	return func(t *Trainer) { t.Fitness = fc }
}

// WithSeed determinizes both the genetic search and the per-application
// train/validation splits.
func WithSeed(seed uint64) Option {
	return func(t *Trainer) {
		t.Search.Seed = seed
		t.Fitness.Seed = seed
	}
}

// WithGenerations bounds the genetic search length.
func WithGenerations(n int) Option {
	return func(t *Trainer) { t.Search.Generations = n }
}

// WithPopulation sets the genetic population size.
func WithPopulation(n int) Option {
	return func(t *Trainer) { t.Search.PopulationSize = n }
}

// WithSearch replaces the whole genetic search configuration for callers
// that need more than the common knobs above.
func WithSearch(p SearchParams) Option {
	return func(t *Trainer) { t.Search = p }
}

// WithLogResponse toggles fitting log(CPI) instead of CPI (on by default;
// the ablation benches turn it off).
func WithLogResponse(on bool) Option {
	return func(t *Trainer) { t.LogResponse = on }
}

// WithStabilize toggles ladder-of-powers variance stabilization (on by
// default).
func WithStabilize(on bool) Option {
	return func(t *Trainer) { t.Stabilize = on }
}

// WithShardLen records the profiling shard length in published snapshots so
// a loaded model profiles new shards consistently.
func WithShardLen(n int) Option {
	return func(t *Trainer) { t.ShardLen = n }
}

// WithFamilies registers an explicit set of model families: every training
// run becomes a selection round that fits each family against the same
// captured evaluator state, scores all of them on the shared validation
// rows, and publishes the winner (TrainReport.Family / Snapshot.Family say
// which; Trainer.Selection has the full scoreboard). An empty set restores
// the classic engine — the reference spline family alone on the genetic
// rung, bit-identical to the pre-family fit path.
func WithFamilies(fams ...ModelFamily) Option {
	return func(t *Trainer) { t.Families = fams }
}

// WithFamilySelection registers all built-in families (spline, residual,
// dal); shorthand for WithFamilies(DefaultFamilies()...).
func WithFamilySelection() Option {
	return func(t *Trainer) { t.Families = core.DefaultFamilies() }
}

// NewRegistry builds an empty in-process model registry; see Registry.
func NewRegistry(cfg RegistryConfig) *Registry { return registry.New(cfg) }

// DefaultFamilies returns the built-in model families: the reference
// genetic spline search, the analytical-prior residual learner, and the
// divide-and-learn clustered splines.
func DefaultFamilies() []ModelFamily { return core.DefaultFamilies() }

// FamilyByName resolves a built-in family from its stable name ("spline",
// "residual", "dal"); nil for unknown names.
func FamilyByName(name string) ModelFamily { return core.FamilyByName(name) }

// LoadSnapshot reads a model snapshot persisted by Snapshot.Save (or
// Trainer.Save), verifying version, structure, shape, and checksum; failure
// modes are the typed ErrModel* errors. Hand the result to Trainer.Adopt to
// serve it.
func LoadSnapshot(path string) (*Snapshot, error) { return core.LoadSnapshot(path) }

// Baseline returns the mid-range reference microarchitecture.
func Baseline() Config { return hwspace.Baseline() }

// ConfigFromIndices expands Table 2 level indices into a full configuration.
// It panics on out-of-range indices; use ConfigFromArch (wire.go) for the
// error-returning variant that validates external input.
func ConfigFromIndices(ix Indices) Config { return hwspace.FromIndices(ix) }

// RandomConfig draws one configuration uniformly at random from the Table 2
// space, deterministically in seed.
func RandomConfig(seed uint64) Config {
	return hwspace.FromIndices(hwspace.Sample(rng.New(seed)))
}

// LifecycleOption configures the continuous-learning control loop at
// construction; see NewLifecycle.
type LifecycleOption func(*LifecycleConfig)

// NewLifecycle attaches a continuous-learning control loop to a trainer:
// every Sample handed to Submit is folded into bounded stores and scored for
// drift, and confirmed drift drives a shadow retrain with canary-gated
// promotion (or rollback) of the trainer's served snapshot. Unset knobs take
// the loop's documented defaults. Close the loop before discarding it.
func NewLifecycle(t *Trainer, opts ...LifecycleOption) *Lifecycle {
	var cfg LifecycleConfig
	for _, o := range opts {
		o(&cfg)
	}
	return lifecycle.NewController(t, cfg)
}

// WithLifecycle replaces the whole loop configuration, for callers that need
// more than the common knobs below; later options still apply on top.
func WithLifecycle(cfg LifecycleConfig) LifecycleOption {
	return func(c *LifecycleConfig) { *c = cfg }
}

// WithDrift replaces the drift-detector tuning (EWMA smoothing, target error
// band, CUSUM trip threshold, warmup).
func WithDrift(d DriftConfig) LifecycleOption {
	return func(c *LifecycleConfig) { c.Drift = d }
}

// WithDriftThreshold sets how much accumulated excess error (CUSUM mass)
// trips the detector; larger values tolerate longer bad stretches.
func WithDriftThreshold(threshold float64) LifecycleOption {
	return func(c *LifecycleConfig) { c.Drift.Threshold = threshold }
}

// WithMinProfiles sets how many fresh post-drift profiles must gather before
// a shadow retrain may start — the paper's "10-20 new profiles" knob.
func WithMinProfiles(n int) LifecycleOption {
	return func(c *LifecycleConfig) { c.MinProfiles = n }
}

// WithCanaryTolerance sets the relative slack a candidate gets on the canary
// set: it is promoted only if its error is within (1+tol) of the incumbent's.
func WithCanaryTolerance(tol float64) LifecycleOption {
	return func(c *LifecycleConfig) { c.CanaryTolerance = tol }
}

// WithStoreBounds caps the two bounded sample stores: the seeded long-tail
// reservoir and the recent-submission ring.
func WithStoreBounds(reservoir, ring int) LifecycleOption {
	return func(c *LifecycleConfig) {
		c.ReservoirCap = reservoir
		c.RingCap = ring
	}
}

// WithLifecycleSeed determinizes every loop decision: reservoir eviction,
// canary splits, and cooldown jitter.
func WithLifecycleSeed(seed uint64) LifecycleOption {
	return func(c *LifecycleConfig) { c.Seed = seed }
}
