// Client: the Go consumer of the hsserve wire API. One client speaks both
// route families: unscoped it targets the legacy /v1 routes (the reserved
// default entry), scoped with WithModelID or Model(id) it targets the
// model-addressed /v2 routes — same wire types either way, so switching a
// caller to multi-model serving is one accessor call, not a rewrite. A model
// id is an exact registry key or the "app:<name>" alias the server routes
// over its consistent-hash ring.
package hsmodel

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
)

// StatusError is the typed form of a non-2xx API answer: the HTTP status
// plus the server's ErrorResponse message.
type StatusError struct {
	Code    int
	Message string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("hsmodel: server answered %d: %s", e.Code, e.Message)
}

// Client talks to one hsserve instance. The zero value is not usable;
// create with NewClient. Clients are safe for concurrent use and cheap to
// scope per model with Model.
type Client struct {
	base  string
	model string // "" = the /v1 default-entry routes
	hc    *http.Client
}

// ClientOption configures a Client at construction.
type ClientOption func(*Client)

// WithModelID scopes the client to one registry entry: every request rides
// the model-addressed /v2 routes. An empty id restores the /v1 default
// routes.
func WithModelID(id string) ClientOption {
	return func(c *Client) { c.model = id }
}

// WithHTTPClient replaces the underlying *http.Client (timeouts, transport
// reuse across load generators).
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) { c.hc = hc }
}

// NewClient builds a client for the server at base (e.g.
// "http://127.0.0.1:8080").
func NewClient(base string, opts ...ClientOption) *Client {
	c := &Client{base: strings.TrimRight(base, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Model returns a copy of the client scoped to the given registry entry;
// the receiver is unchanged. An empty id scopes back to the /v1 routes.
func (c *Client) Model(id string) *Client {
	scoped := *c
	scoped.model = id
	return &scoped
}

// ModelID reports the registry entry the client is scoped to ("" = the v1
// default routes).
func (c *Client) ModelID() string { return c.model }

// route maps a logical endpoint suffix onto the scoped route family.
func (c *Client) route(suffix string) string {
	if c.model == "" {
		return c.base + "/v1" + suffix
	}
	return c.base + "/v2/models/" + url.PathEscape(c.model) + suffix
}

// do runs one JSON round trip; out may be nil for status-only requests.
func (c *Client) do(ctx context.Context, method, url string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("hsmodel: encoding request: %w", err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var er ErrorResponse
		msg := strings.TrimSpace(string(data))
		if json.Unmarshal(data, &er) == nil && er.Error != "" {
			msg = er.Error
		}
		return &StatusError{Code: resp.StatusCode, Message: msg}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("hsmodel: decoding response: %w", err)
	}
	return nil
}

// Predict answers one PredictRequest on the scoped model.
func (c *Client) Predict(ctx context.Context, req PredictRequest) (PredictResponse, error) {
	var out PredictResponse
	err := c.do(ctx, http.MethodPost, c.route("/predict"), req, &out)
	return out, err
}

// PredictBatch answers many predictions in one round trip on the scoped
// model.
func (c *Client) PredictBatch(ctx context.Context, req BatchPredictRequest) (BatchPredictResponse, error) {
	var out BatchPredictResponse
	err := c.do(ctx, http.MethodPost, c.route("/predict:batch"), req, &out)
	return out, err
}

// Samples feeds profiles to the server: registry-wide fan-out on the v1
// routes, entry-scoped (or fan_out-controlled) on a model-scoped client.
func (c *Client) Samples(ctx context.Context, req SamplesRequest) (SamplesResponse, error) {
	var out SamplesResponse
	err := c.do(ctx, http.MethodPost, c.route("/samples"), req, &out)
	return out, err
}

// ModelInfo fetches the scoped model's provenance.
func (c *Client) ModelInfo(ctx context.Context) (ModelInfo, error) {
	var out ModelInfo
	err := c.do(ctx, http.MethodGet, c.route("/model"), nil, &out)
	return out, err
}

// Models lists the registry: every entry plus the registry-wide load state.
func (c *Client) Models(ctx context.Context) (RegistryStatus, error) {
	var out RegistryStatus
	err := c.do(ctx, http.MethodGet, c.base+"/v2/models", nil, &out)
	return out, err
}

// RegisterModel registers a new entry and returns its status.
func (c *Client) RegisterModel(ctx context.Context, req RegisterRequest) (ModelStatus, error) {
	var out ModelStatus
	err := c.do(ctx, http.MethodPost, c.base+"/v2/models", req, &out)
	return out, err
}

// UnregisterModel removes (and drains) the entry registered under id.
func (c *Client) UnregisterModel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, c.base+"/v2/models/"+url.PathEscape(id), nil, nil)
}
