package hsmodel

import (
	"encoding/json"
	"math"
	"testing"

	"hsmodel/internal/hwspace"
)

func TestOptionsApply(t *testing.T) {
	fc := FitnessConfig{TrainFrac: 0.5, Weight: 3, Seed: 11}
	tr := New(nil,
		WithSeed(9),
		WithPopulation(17),
		WithGenerations(4),
		WithFitness(fc),
		WithLogResponse(false),
		WithStabilize(false),
		WithShardLen(12_345),
	)
	if tr.Search.Seed != 9 || tr.Search.PopulationSize != 17 || tr.Search.Generations != 4 {
		t.Errorf("search params not applied: %+v", tr.Search)
	}
	if tr.Fitness != fc {
		t.Errorf("fitness = %+v, want %+v", tr.Fitness, fc)
	}
	if tr.LogResponse || tr.Stabilize || tr.ShardLen != 12_345 {
		t.Errorf("flags not applied: log=%v stab=%v shardlen=%d", tr.LogResponse, tr.Stabilize, tr.ShardLen)
	}
	// Defaults survive when no option overrides them.
	if d := New(nil); !d.LogResponse || !d.Stabilize {
		t.Error("paper defaults lost without options")
	}
}

// TestLifecycleOptionsApply pins the facade plumbing for the control loop:
// options land in the controller, the stores honor their bounds, and the loop
// closes cleanly — all without any training machinery.
func TestLifecycleOptionsApply(t *testing.T) {
	lc := NewLifecycle(New(nil),
		WithLifecycle(LifecycleConfig{MinTrainRows: 99}),
		WithDrift(DriftConfig{Target: 0.3}),
		WithDriftThreshold(2.5),
		WithMinProfiles(4),
		WithCanaryTolerance(0.1),
		WithStoreBounds(8, 3),
		WithLifecycleSeed(21),
	)
	st := lc.Status()
	if st.State != "stable" {
		t.Fatalf("initial state %q, want stable", st.State)
	}
	if st.ReservoirCap != 8 || st.RingCap != 3 {
		t.Errorf("store caps %d/%d, want 8/3 from WithStoreBounds", st.ReservoirCap, st.RingCap)
	}

	var s Sample
	s.App = "facade"
	s.HW = Baseline()
	for i := 0; i < 20; i++ {
		s.CPI = float64(i + 1)
		lc.Submit(s)
	}
	st = lc.Status()
	if st.Submissions != 20 {
		t.Errorf("submissions %d, want 20", st.Submissions)
	}
	if st.ReservoirLen > st.ReservoirCap || st.RingLen > st.RingCap {
		t.Errorf("occupancy %d/%d reservoir, %d/%d ring exceeds bounds",
			st.ReservoirLen, st.ReservoirCap, st.RingLen, st.RingCap)
	}
	if err := lc.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigFromArch(t *testing.T) {
	counts := hwspace.LevelCounts()
	arch := make([]int, NumHWParams)
	for i := range arch {
		arch[i] = counts[i] - 1
	}
	cfg, err := ConfigFromArch(arch)
	if err != nil {
		t.Fatal(err)
	}
	var ix Indices
	copy(ix[:], arch)
	if cfg != ConfigFromIndices(ix) {
		t.Error("ConfigFromArch disagrees with ConfigFromIndices")
	}

	for _, bad := range [][]int{
		nil,
		make([]int, NumHWParams-1),
		{-1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		{counts[0], 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
	} {
		if _, err := ConfigFromArch(bad); err == nil {
			t.Errorf("arch %v accepted, want error", bad)
		}
	}
}

func TestConfigFromWirePrecedence(t *testing.T) {
	cfg := RandomConfig(5)
	got, err := ConfigFromWire([]int{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, &cfg)
	if err != nil || got != cfg {
		t.Errorf("config should win over arch: got %v err %v", got, err)
	}
	if got, err := ConfigFromWire(nil, nil); err != nil || got != Baseline() {
		t.Errorf("empty wire should resolve to baseline: got %v err %v", got, err)
	}
}

// TestSampleWireRoundTrip pins the bit-exactness the serving layer's
// bit-identity guarantee rests on: a Sample survives wire encoding and a
// JSON round trip with every float64 unchanged.
func TestSampleWireRoundTrip(t *testing.T) {
	var s Sample
	s.App, s.AppID, s.Shard = "astar", 3, 7
	for i := range s.X {
		s.X[i] = math.Sqrt(float64(i) + 0.1) // not exactly representable
	}
	s.HW = RandomConfig(42)
	s.CPI = 1.0 / 3.0

	data, err := json.Marshal(SampleToWire(s))
	if err != nil {
		t.Fatal(err)
	}
	var w SampleWire
	if err := json.Unmarshal(data, &w); err != nil {
		t.Fatal(err)
	}
	back, err := w.ToSample()
	if err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Errorf("round trip changed the sample:\n got %+v\nwant %+v", back, s)
	}
}

func TestPredictRequestShardInputs(t *testing.T) {
	x := make([]float64, NumCharacteristics)
	x[0] = 0.25

	xs, hw, err := (PredictRequest{X: x}).ShardInputs()
	if err != nil || len(xs) != 1 || xs[0][0] != 0.25 || hw != Baseline() {
		t.Errorf("single shard: xs=%v hw=%v err=%v", xs, hw, err)
	}
	xs, _, err = (PredictRequest{Shards: [][]float64{x, x, x}}).ShardInputs()
	if err != nil || len(xs) != 3 {
		t.Errorf("multi shard: %d inputs, err=%v", len(xs), err)
	}

	for name, req := range map[string]PredictRequest{
		"empty":   {},
		"both":    {X: x, Shards: [][]float64{x}},
		"shortX":  {X: x[:5]},
		"badArch": {X: x, Arch: []int{99}},
	} {
		if _, _, err := req.ShardInputs(); err == nil {
			t.Errorf("%s request accepted, want error", name)
		}
	}
}
