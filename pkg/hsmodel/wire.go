// Wire schema: the one JSON vocabulary spoken by the hsserve HTTP service,
// the hsinfer CLI, and any external tooling. Every request and response body
// on the /v1 API is one of these types, so a sample captured with hsinfer
// can be POSTed to hsserve unchanged and a prediction printed by either tool
// round-trips through the same struct.
//
// Hardware on the wire is either `arch` — the thirteen Table 2 level
// indices, the compact external handle — or `config`, a fully specified
// microarchitecture. When both are present, `config` wins; when both are
// absent, the baseline configuration is assumed.
package hsmodel

import (
	"fmt"

	"hsmodel/internal/hwspace"
)

// SampleWire is the wire form of a Sample: one sparse profile observation.
type SampleWire struct {
	// App optionally names the application the shard came from.
	App string `json:"app,omitempty"`
	// AppID groups rows by application for the per-application fitness.
	AppID int `json:"app_id"`
	// Shard is the shard index within the application's timeline.
	Shard int `json:"shard,omitempty"`
	// X holds the thirteen Table 1 software characteristics.
	X []float64 `json:"x"`
	// Arch gives the architecture as Table 2 level indices.
	Arch []int `json:"arch,omitempty"`
	// Config gives the architecture fully specified (wins over Arch).
	Config *Config `json:"config,omitempty"`
	// CPI is the measured performance of (X, architecture).
	CPI float64 `json:"cpi"`
}

// PredictRequest asks for a single-shard or whole-application prediction:
// exactly one of X (one shard) or Shards (per-shard characteristics,
// aggregated as the paper does) must be set.
type PredictRequest struct {
	X      []float64   `json:"x,omitempty"`
	Shards [][]float64 `json:"shards,omitempty"`
	Arch   []int       `json:"arch,omitempty"`
	Config *Config     `json:"config,omitempty"`
}

// PredictResponse is the answer to a PredictRequest.
type PredictResponse struct {
	// CPI is the predicted performance.
	CPI float64 `json:"cpi"`
	// Shards is the number of shard predictions aggregated (1 for a
	// single-shard query).
	Shards int `json:"shards"`
}

// BatchPredictRequest carries many predictions in one round trip; the server
// additionally coalesces items across concurrent requests into shared
// evaluator passes.
type BatchPredictRequest struct {
	Requests []PredictRequest `json:"requests"`
}

// BatchPredictItem is one result in a batch; exactly one of the embedded
// response or Error is meaningful.
type BatchPredictItem struct {
	CPI    float64 `json:"cpi,omitempty"`
	Shards int     `json:"shards,omitempty"`
	Error  string  `json:"error,omitempty"`
}

// BatchPredictResponse answers a BatchPredictRequest, Results parallel to
// Requests.
type BatchPredictResponse struct {
	Results []BatchPredictItem `json:"results"`
}

// SamplesRequest feeds new profiles into the served trainer's store.
type SamplesRequest struct {
	Samples []SampleWire `json:"samples"`
	// Update asks the server to re-specify the model asynchronously once the
	// samples are absorbed. A failed re-specification never replaces the
	// served snapshot.
	Update bool `json:"update,omitempty"`
	// FanOut, on a model-addressed /v2/models/{id}/samples POST, asks the
	// server to fan the samples out to every registered model whose
	// application scope matches each sample (the /v1/samples behavior)
	// instead of feeding only the addressed model.
	FanOut bool `json:"fan_out,omitempty"`
}

// SamplesResponse acknowledges absorbed profiles.
type SamplesResponse struct {
	Accepted      int  `json:"accepted"`
	TotalSamples  int  `json:"total_samples"`
	UpdateStarted bool `json:"update_started"`
	// Models lists the registered models the samples fanned out to, sorted;
	// set only on fan-out responses (/v2 with fan_out), never on /v1.
	Models []string `json:"models,omitempty"`
}

// ModelInfo describes the currently served snapshot and its provenance.
type ModelInfo struct {
	// Model is the registry id the info describes; set only on the
	// model-addressed /v2 route, never on /v1 (whose body stays bit-identical
	// to the single-model server).
	Model string `json:"model,omitempty"`
	// Application is the entry's application scope ("" = every application);
	// ArchSpace names its architecture space. /v2 only, like Model.
	Application string `json:"application,omitempty"`
	ArchSpace   string `json:"arch_space,omitempty"`
	Trained     bool   `json:"trained"`
	// Family names the model family serving predictions ("spline",
	// "residual", "dal"); FamilyScores carries the per-family CV MedAPE of
	// the selection round that chose it, when one ran.
	Family       string             `json:"family,omitempty"`
	FamilyScores map[string]float64 `json:"family_scores,omitempty"`
	Spec         string             `json:"spec,omitempty"`
	Terms        int                `json:"terms,omitempty"`
	// Detail is family-specific provenance (prior name, cluster count).
	Detail      string `json:"detail,omitempty"`
	Rung        string `json:"rung,omitempty"`
	TrainedRows int    `json:"trained_rows,omitempty"`
	ShardLen    int    `json:"shard_len,omitempty"`
	// TotalSamples counts the trainer's profile store, including samples not
	// yet trained on.
	TotalSamples int `json:"total_samples"`
	// SnapshotVersion counts snapshot publications observed by the server;
	// SnapshotAgeSec is the seconds since the last one.
	SnapshotVersion uint64  `json:"snapshot_version"`
	SnapshotAgeSec  float64 `json:"snapshot_age_sec"`
	// GramFits / QRFallbacks are the candidate-fit path counters of the
	// current evaluator (see TrainReport).
	GramFits    uint64 `json:"gram_fits"`
	QRFallbacks uint64 `json:"qr_fallbacks"`
}

// ErrorResponse is the body of every non-2xx API answer, and the JSON error
// form the CLI prints in -json mode — including snapshot persistence
// failures, whose typed ErrModel* messages pass through verbatim.
type ErrorResponse struct {
	Error string `json:"error"`
}

// DefaultModelID is the reserved registry entry every legacy /v1/* route
// aliases: the single-model server's trainer lives there, so v1 responses
// stay bit-identical while /v2/models/default addresses the same model
// explicitly. The id cannot be registered or unregistered over the wire.
const DefaultModelID = "default"

// LifecycleWire is the wire form of a per-model continuous-learning
// configuration: the common knobs, with zero values taking the loop's
// documented defaults.
type LifecycleWire struct {
	// DriftThreshold is the CUSUM mass that trips the drift detector.
	DriftThreshold float64 `json:"drift_threshold,omitempty"`
	// MinProfiles is how many fresh post-drift profiles gather before a
	// shadow retrain starts.
	MinProfiles int `json:"min_profiles,omitempty"`
	// CanaryTolerance is the candidate's relative slack on the canary set.
	CanaryTolerance float64 `json:"canary_tolerance,omitempty"`
	// Seed determinizes every loop decision.
	Seed uint64 `json:"seed,omitempty"`
}

// RegisterRequest declares one model entry: the body of POST /v2/models and
// one element of the hsserve -models manifest — the same schema in both
// places, so a manifest entry can be replayed against a live server
// unchanged.
type RegisterRequest struct {
	// ID is the registry key (required; "default" is reserved).
	ID string `json:"id"`
	// Application scopes sample fan-out to one application's profiles;
	// empty absorbs every application.
	Application string `json:"application,omitempty"`
	// ArchSpace names the architecture space (default "table2").
	ArchSpace string `json:"arch_space,omitempty"`
	// ModelPath optionally names a persisted snapshot served from
	// registration time.
	ModelPath string `json:"model_path,omitempty"`
	// Families lists model families for per-entry selection rounds.
	Families []string `json:"families,omitempty"`
	// Seed determinizes the entry's search and splits.
	Seed uint64 `json:"seed,omitempty"`
	// ShardLen is recorded in published snapshots.
	ShardLen int `json:"shard_len,omitempty"`
	// Population / Generations bound the entry's genetic search.
	Population  int `json:"population,omitempty"`
	Generations int `json:"generations,omitempty"`
	// Lifecycle, when non-nil, attaches a continuous-learning loop.
	Lifecycle *LifecycleWire `json:"lifecycle,omitempty"`
}

// Manifest is the hsserve -models file: the set of model entries a server
// registers at boot and rewrites after every successful wire
// register/unregister (the reserved default entry is never persisted).
type Manifest struct {
	Models []RegisterRequest `json:"models"`
}

// ModelStatus summarizes one registry entry in GET /v2/models.
type ModelStatus struct {
	ID          string `json:"id"`
	Application string `json:"application,omitempty"`
	ArchSpace   string `json:"arch_space"`
	Trained     bool   `json:"trained"`
	Family      string `json:"family,omitempty"`
	Rung        string `json:"rung,omitempty"`
	TrainedRows int    `json:"trained_rows,omitempty"`
	// TotalSamples counts the entry's profile store, including rows not yet
	// trained on.
	TotalSamples    int    `json:"total_samples"`
	SnapshotVersion uint64 `json:"snapshot_version"`
	// QueueDepth is the entry's queued predictions at scrape time.
	QueueDepth int `json:"queue_depth"`
	// Lifecycle is the control-loop state ("stable", "retraining", ...);
	// empty when the loop is disabled.
	Lifecycle string   `json:"lifecycle,omitempty"`
	ModelPath string   `json:"model_path,omitempty"`
	Families  []string `json:"families,omitempty"`
}

// RegistryStatus is the body of GET /v2/models: every entry plus the
// registry-wide load state.
type RegistryStatus struct {
	Models []ModelStatus `json:"models"`
	// QueueDepth is the aggregate queued predictions across entries;
	// QueueBound is the shed threshold (0 = aggregate bound disabled).
	QueueDepth int `json:"queue_depth"`
	QueueBound int `json:"queue_bound,omitempty"`
	// Default is the reserved entry id the /v1 routes alias.
	Default string `json:"default"`
}

// ConfigFromArch validates Table 2 level indices from the wire and expands
// them, unlike ConfigFromIndices, without panicking on bad input.
func ConfigFromArch(arch []int) (Config, error) {
	if len(arch) != NumHWParams {
		return Config{}, fmt.Errorf("hsmodel: arch needs %d level indices, got %d", NumHWParams, len(arch))
	}
	counts := hwspace.LevelCounts()
	var ix Indices
	for i, a := range arch {
		if a < 0 || a >= counts[i] {
			return Config{}, fmt.Errorf("hsmodel: arch[%d] = %d out of range for %s (0-%d)",
				i, a, hwspace.Names[i], counts[i]-1)
		}
		ix[i] = a
	}
	return hwspace.FromIndices(ix), nil
}

// ConfigFromWire resolves the wire's two hardware encodings: config if
// present, else arch, else the baseline.
func ConfigFromWire(arch []int, cfg *Config) (Config, error) {
	if cfg != nil {
		return *cfg, nil
	}
	if len(arch) > 0 {
		return ConfigFromArch(arch)
	}
	return Baseline(), nil
}

// characteristicsFromWire validates and converts one shard's wire vector.
func characteristicsFromWire(x []float64) (Characteristics, error) {
	var c Characteristics
	if len(x) != NumCharacteristics {
		return c, fmt.Errorf("hsmodel: x needs %d characteristics, got %d", NumCharacteristics, len(x))
	}
	copy(c[:], x)
	return c, nil
}

// ToSample converts the wire form into a modeling Sample.
func (w SampleWire) ToSample() (Sample, error) {
	x, err := characteristicsFromWire(w.X)
	if err != nil {
		return Sample{}, err
	}
	hw, err := ConfigFromWire(w.Arch, w.Config)
	if err != nil {
		return Sample{}, err
	}
	return Sample{App: w.App, AppID: w.AppID, Shard: w.Shard, X: x, HW: hw, CPI: w.CPI}, nil
}

// SampleToWire converts a modeling Sample to its wire form (full config
// encoding, which survives round-trips exactly).
func SampleToWire(s Sample) SampleWire {
	hw := s.HW
	return SampleWire{
		App:    s.App,
		AppID:  s.AppID,
		Shard:  s.Shard,
		X:      append([]float64(nil), s.X[:]...),
		Config: &hw,
		CPI:    s.CPI,
	}
}

// ShardInputs converts a PredictRequest's software side into shard
// characteristic vectors (length 1 for a single-shard query) plus the
// resolved hardware configuration.
func (r PredictRequest) ShardInputs() ([]Characteristics, Config, error) {
	hw, err := ConfigFromWire(r.Arch, r.Config)
	if err != nil {
		return nil, Config{}, err
	}
	switch {
	case len(r.X) > 0 && len(r.Shards) > 0:
		return nil, Config{}, fmt.Errorf("hsmodel: predict request sets both x and shards")
	case len(r.X) > 0:
		x, err := characteristicsFromWire(r.X)
		if err != nil {
			return nil, Config{}, err
		}
		return []Characteristics{x}, hw, nil
	case len(r.Shards) > 0:
		xs := make([]Characteristics, len(r.Shards))
		for i, sx := range r.Shards {
			x, err := characteristicsFromWire(sx)
			if err != nil {
				return nil, Config{}, fmt.Errorf("hsmodel: shard %d: %w", i, err)
			}
			xs[i] = x
		}
		return xs, hw, nil
	default:
		return nil, Config{}, fmt.Errorf("hsmodel: predict request needs x or shards")
	}
}
