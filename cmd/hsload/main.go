// Command hsload is the serving-path load generator: it measures predict
// throughput and tail latency (p50/p99/p999) through the real serve stack and
// writes a machine-readable benchmark report (BENCH_pr8.json in CI).
//
// The default mode is in-process: it bootstrap-trains a model exactly like
// `hsserve -bootstrap`, then drives serve.Server's exported Predict /
// PredictMany APIs — the same code path HTTP handlers use, minus JSON and
// socket overhead, so the numbers isolate the batcher and model kernels.
// Three scenarios run back to back:
//
//	seed     one shard, MaxBatch 1, one prediction per queue round trip —
//	         the pre-sharding, pre-batching serving topology
//	sharded  per-CPU shards, coalescing enabled, still one prediction per
//	         submission
//	batch    per-CPU shards, whole client batches per submission
//	         (Server.PredictMany), answered in contiguous PredictBatch sweeps
//
// The report records each scenario's throughput and latency percentiles plus
// the batch-vs-seed speedup. With -addr it instead drives a live hsserve over
// HTTP — the legacy /v1 predict routes by default, or one entry of the
// multi-model registry over the /v2/models/{id} routes when -model-id names
// it (an exact id or the "app:<name>" consistent-hash alias).
//
//	hsload -out BENCH_pr8.json              in-process, write the report
//	hsload -duration 10s -conc 16           heavier in-process run
//	hsload -addr http://localhost:8080      load-test a running hsserve
//	hsload -addr ... -model-id m-bzip2      pin the load to one registry entry
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hsmodel/internal/hwspace"
	"hsmodel/internal/profile"
	"hsmodel/internal/serve"
	"hsmodel/internal/trace"
	"hsmodel/pkg/hsmodel"
)

func main() {
	addr := flag.String("addr", "", "drive a live hsserve at this base URL instead of in-process")
	modelID := flag.String("model-id", "", "with -addr: the registry entry to address over /v2 (exact id or app:<name>; empty = the /v1 default routes)")
	out := flag.String("out", "", "write the JSON report here (default: stdout only)")
	conc := flag.Int("conc", 8, "concurrent client goroutines per scenario")
	duration := flag.Duration("duration", 3*time.Second, "measured time per scenario")
	batch := flag.Int("batch", 64, "predictions per PredictMany submission in the batch scenario")
	apps := flag.Int("apps", 3, "bootstrap: number of SPEC2006 applications to profile")
	samples := flag.Int("samples", 40, "bootstrap: (shard, architecture) samples per application")
	pop := flag.Int("pop", 8, "bootstrap: genetic population size")
	gens := flag.Int("gens", 2, "bootstrap: genetic generations")
	seed := flag.Uint64("seed", 7, "bootstrap: random seed")
	shardLen := flag.Int("shardlen", 20_000, "bootstrap: shard length in instructions")
	flag.Parse()

	logger := log.New(os.Stderr, "hsload: ", log.LstdFlags)
	if err := run(logger, *addr, *modelID, *out, *conc, *duration, *batch, *apps, *samples, *pop, *gens, *seed, *shardLen); err != nil {
		logger.Fatal(err)
	}
}

// scenarioResult is one scenario's measurement in the report.
type scenarioResult struct {
	Predictions int     `json:"predictions"`
	PredsPerSec float64 `json:"preds_per_sec"`
	P50us       float64 `json:"p50_us"`
	P99us       float64 `json:"p99_us"`
	P999us      float64 `json:"p999_us"`
	Note        string  `json:"note"`
}

// report is the BENCH_pr8.json schema, modeled on the earlier BENCH files.
type report struct {
	PR        int                       `json:"pr"`
	Date      string                    `json:"date"`
	Host      string                    `json:"host"`
	Model     string                    `json:"model"`
	Config    map[string]any            `json:"config"`
	Scenarios map[string]scenarioResult `json:"scenarios"`
	// SpeedupBatchVsSeed is sharded-batch throughput over the seed topology's
	// (the acceptance metric: the batch path must clear 5x).
	SpeedupBatchVsSeed float64 `json:"speedup_batch_vs_seed"`
}

func run(logger *log.Logger, addr, modelID, out string, conc int, duration time.Duration, batch, nApps, samples, pop, gens int, seed uint64, shardLen int) error {
	xs, hws, tr, model, err := workload(logger, addr == "", nApps, samples, pop, gens, seed, shardLen)
	if err != nil {
		return err
	}

	rep := &report{
		PR:   8,
		Date: time.Now().Format("2006-01-02"),
		Host: fmt.Sprintf("%s/%s, GOMAXPROCS=%d", runtime.GOOS, runtime.GOARCH, runtime.GOMAXPROCS(0)),
		Config: map[string]any{
			"conc": conc, "duration": duration.String(), "batch": batch,
			"apps": nApps, "samples_per_app": samples, "seed": seed, "shardlen": shardLen,
		},
		Scenarios: map[string]scenarioResult{},
		Model:     model,
	}

	if addr != "" {
		err = runHTTP(logger, rep, addr, modelID, conc, duration, batch, xs, hws)
	} else {
		err = runInProcess(logger, rep, tr, conc, duration, batch, xs, hws)
	}
	if err != nil {
		return err
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(enc))
	if out != "" {
		if err := os.WriteFile(out, append(enc, '\n'), 0o644); err != nil {
			return err
		}
		logger.Printf("report written to %s", out)
	}
	return nil
}

// workload builds the request vectors (and, in-process, the trained trainer):
// real collected profiles, so predictions exercise the fitted model on its
// own input distribution.
func workload(logger *log.Logger, train bool, nApps, samples, pop, gens int, seed uint64, shardLen int) ([]profile.Characteristics, []hwspace.Config, *hsmodel.Trainer, string, error) {
	all := trace.SPEC2006()
	if nApps <= 0 || nApps > len(all) {
		nApps = len(all)
	}
	col := &hsmodel.Collector{ShardLen: shardLen}
	logger.Printf("collecting %d samples/app from %d applications...", samples, nApps)
	sm := col.Collect(all[:nApps], samples, seed)
	xs := make([]profile.Characteristics, len(sm))
	hws := make([]hwspace.Config, len(sm))
	for i, s := range sm {
		xs[i], hws[i] = s.X, s.HW
	}
	if !train {
		return xs, hws, nil, "remote", nil
	}
	tr := hsmodel.New(append([]hsmodel.Sample(nil), sm...),
		hsmodel.WithSeed(seed), hsmodel.WithShardLen(shardLen),
		hsmodel.WithSearch(hsmodel.SearchParams{PopulationSize: pop, Generations: gens, Seed: seed}))
	logger.Printf("training (pop %d, %d generations)...", pop, gens)
	if err := tr.Train(context.Background()); err != nil {
		return nil, nil, nil, "", fmt.Errorf("bootstrap training failed: %w", err)
	}
	snap := tr.Snapshot()
	model := fmt.Sprintf("family %s, %d rows, spec %s", snap.Family(), snap.TrainedRows(), snap.Describe().Spec)
	logger.Printf("trained: %s", model)
	return xs, hws, tr, model, nil
}

// runInProcess measures the three in-process scenarios and the speedup.
func runInProcess(logger *log.Logger, rep *report, tr *hsmodel.Trainer, conc int, duration time.Duration, batch int, xs []profile.Characteristics, hws []hwspace.Config) error {
	seedRes, err := driveServer(logger, rep, "seed", serve.Config{
		Trainer: tr, Shards: 1, MaxBatch: 1, QueueDepth: 4 * conc,
	}, conc, duration, 1, xs, hws,
		"one shard, MaxBatch 1, one prediction per queue round trip: the pre-sharding, pre-batching topology")
	if err != nil {
		return err
	}
	// MaxBatch = conc: under a closed loop every flush fills from the blocked
	// clients instead of waiting out the gather window.
	if _, err := driveServer(logger, rep, "sharded", serve.Config{
		Trainer: tr, MaxBatch: conc, QueueDepth: 8 * conc, MaxWait: 200 * time.Microsecond,
	}, conc, duration, 1, xs, hws,
		"per-CPU shards, coalescing on, one prediction per submission"); err != nil {
		return err
	}
	batchRes, err := driveServer(logger, rep, "batch", serve.Config{
		Trainer: tr, MaxBatch: 4, QueueDepth: 8 * conc, MaxWait: 200 * time.Microsecond,
	}, conc, duration, batch, xs, hws,
		fmt.Sprintf("per-CPU shards, %d predictions per PredictMany submission, contiguous PredictBatch sweeps", batch))
	if err != nil {
		return err
	}
	rep.SpeedupBatchVsSeed = batchRes.PredsPerSec / seedRes.PredsPerSec
	logger.Printf("speedup batch vs seed: %.1fx", rep.SpeedupBatchVsSeed)
	return nil
}

// driveServer runs one scenario: conc clients hammer a dedicated server for
// the configured duration; itemsPerCall selects Predict vs PredictMany.
// Latency is recorded per submission call.
func driveServer(logger *log.Logger, rep *report, name string, cfg serve.Config, conc int, duration time.Duration, itemsPerCall int, xs []profile.Characteristics, hws []hwspace.Config, note string) (scenarioResult, error) {
	srv, err := serve.New(cfg)
	if err != nil {
		return scenarioResult{}, err
	}
	defer srv.Close()

	var stop atomic.Bool
	lats := make([][]int64, conc)
	counts := make([]int, conc)
	errs := make([]error, conc)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < conc; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			ctx := context.Background()
			bxs := make([]profile.Characteristics, itemsPerCall)
			bhws := make([]hwspace.Config, itemsPerCall)
			out := make([]float64, itemsPerCall)
			pos := c * 17 // decorrelate client request streams
			for !stop.Load() {
				for i := 0; i < itemsPerCall; i++ {
					bxs[i], bhws[i] = xs[pos%len(xs)], hws[pos%len(hws)]
					pos++
				}
				t0 := time.Now()
				var callErr error
				if itemsPerCall == 1 {
					_, callErr = srv.Predict(ctx, bxs[0], bhws[0])
				} else {
					callErr = srv.PredictMany(ctx, bxs, bhws, out)
				}
				if callErr != nil {
					errs[c] = callErr
					return
				}
				lats[c] = append(lats[c], time.Since(t0).Nanoseconds())
				counts[c] += itemsPerCall
			}
		}(c)
	}
	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return scenarioResult{}, fmt.Errorf("scenario %s: %w", name, err)
		}
	}
	res := summarize(lats, counts, elapsed, note)
	rep.Scenarios[name] = res
	logger.Printf("%-8s %9.0f preds/s  p50 %6.0fus  p99 %6.0fus  p999 %6.0fus",
		name, res.PredsPerSec, res.P50us, res.P99us, res.P999us)
	return res, nil
}

// runHTTP measures a live server over the wire: single predicts and batch
// posts, through the facade Client so the same run exercises the /v1 routes
// (empty model id) or one registry entry's /v2 routes. Latency includes JSON
// and socket cost — the client's view.
func runHTTP(logger *log.Logger, rep *report, base, modelID string, conc int, duration time.Duration, batch int, xs []profile.Characteristics, hws []hwspace.Config) error {
	newClient := func() *hsmodel.Client {
		return hsmodel.NewClient(base,
			hsmodel.WithModelID(modelID),
			hsmodel.WithHTTPClient(&http.Client{Timeout: 30 * time.Second}))
	}
	ctx := context.Background()
	single := func(pos int, client *hsmodel.Client) (int, error) {
		_, err := client.Predict(ctx, predictWire(xs[pos%len(xs)], hws[pos%len(hws)]))
		return 1, err
	}
	many := func(pos int, client *hsmodel.Client) (int, error) {
		var br hsmodel.BatchPredictRequest
		for i := 0; i < batch; i++ {
			br.Requests = append(br.Requests, predictWire(xs[(pos+i)%len(xs)], hws[(pos+i)%len(hws)]))
		}
		resp, err := client.PredictBatch(ctx, br)
		if err != nil {
			return 0, err
		}
		for _, item := range resp.Results {
			if item.Error != "" {
				return 0, fmt.Errorf("batch item error: %s", item.Error)
			}
		}
		return batch, nil
	}
	route := "/v1"
	if modelID != "" {
		route = "/v2/models/" + modelID
	}
	for _, sc := range []struct {
		name string
		call func(int, *hsmodel.Client) (int, error)
		note string
	}{
		{"http_single", single, fmt.Sprintf("one POST %s/predict per prediction: the wire shape of the unsharded/unbatched seed serving path", route)},
		{"http_batch", many, fmt.Sprintf("POST %s/predict:batch, %d predictions per request, answered as one multi-item job in contiguous PredictBatch sweeps", route, batch)},
	} {
		res, err := driveHTTP(newClient, sc.call, conc, duration, sc.note)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", sc.name, err)
		}
		rep.Scenarios[sc.name] = res
		logger.Printf("%-11s %9.0f preds/s  p50 %6.0fus  p99 %6.0fus  p999 %6.0fus",
			sc.name, res.PredsPerSec, res.P50us, res.P99us, res.P999us)
	}
	if s, ok := rep.Scenarios["http_single"]; ok {
		rep.SpeedupBatchVsSeed = rep.Scenarios["http_batch"].PredsPerSec / s.PredsPerSec
	}
	return nil
}

func driveHTTP(newClient func() *hsmodel.Client, call func(int, *hsmodel.Client) (int, error), conc int, duration time.Duration, note string) (scenarioResult, error) {
	var stop atomic.Bool
	lats := make([][]int64, conc)
	counts := make([]int, conc)
	errs := make([]error, conc)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < conc; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := newClient()
			pos := c * 17
			for !stop.Load() {
				t0 := time.Now()
				n, err := call(pos, client)
				if err != nil {
					errs[c] = err
					return
				}
				lats[c] = append(lats[c], time.Since(t0).Nanoseconds())
				counts[c] += n
				pos += n
			}
		}(c)
	}
	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return scenarioResult{}, err
		}
	}
	return summarize(lats, counts, elapsed, note), nil
}

func predictWire(x profile.Characteristics, hw hwspace.Config) hsmodel.PredictRequest {
	h := hw
	return hsmodel.PredictRequest{X: x[:], Config: &h}
}

// summarize merges per-client latency records into the scenario result.
func summarize(lats [][]int64, counts []int, elapsed time.Duration, note string) scenarioResult {
	var all []int64
	total := 0
	for c := range lats {
		all = append(all, lats[c]...)
		total += counts[c]
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return float64(all[i]) / 1e3
	}
	return scenarioResult{
		Predictions: total,
		PredsPerSec: float64(total) / elapsed.Seconds(),
		P50us:       pct(0.50),
		P99us:       pct(0.99),
		P999us:      pct(0.999),
		Note:        note,
	}
}
