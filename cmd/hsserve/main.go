// Command hsserve is the HTTP prediction service: it serves single-shard and
// whole-application CPI predictions from a trained snapshot, coalesces
// concurrent predictions into shared model passes, absorbs new profiles into
// the trainer's store, and exposes Prometheus metrics — the serving half of
// the paper's always-available update protocol.
//
//	hsserve -model model.json                   serve a persisted snapshot
//	hsserve -bootstrap -samples 40 -apps 3      train in-process, then serve
//	hsserve -models fleet.json                  multi-model registry from a manifest
//	hsserve -lifecycle -bootstrap               continuous learning on /v1/samples
//	hsserve -selfcheck                          one-process smoke test (CI)
//	hsserve -driftcheck                         scripted drift episode smoke test (CI)
//	hsserve -registrycheck                      multi-model registry smoke test (CI)
//
// SIGHUP hot-reloads the snapshot from -model without dropping requests;
// SIGINT/SIGTERM shut down gracefully, draining in-flight batches.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"hsmodel/internal/faultinject"
	"hsmodel/internal/serve"
	"hsmodel/internal/trace"
	"hsmodel/pkg/hsmodel"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	modelPath := flag.String("model", "", "snapshot file to serve (reloaded on SIGHUP)")
	bootstrap := flag.Bool("bootstrap", false, "collect samples and train a model before serving")
	samples := flag.Int("samples", 40, "bootstrap: (shard, architecture) samples per application")
	apps := flag.Int("apps", 3, "bootstrap: number of SPEC2006 applications to profile")
	pop := flag.Int("pop", 24, "bootstrap: genetic population size")
	gens := flag.Int("gens", 8, "bootstrap: genetic generations")
	seed := flag.Uint64("seed", 1, "bootstrap: random seed")
	shardLen := flag.Int("shardlen", 50_000, "bootstrap: shard length in instructions")
	maxBatch := flag.Int("max-batch", 32, "predictions coalesced into one model pass")
	maxWait := flag.Duration("max-wait", 2*time.Millisecond, "batcher wait to fill a batch")
	shards := flag.Int("shards", 0, "batcher queue+worker shards (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request timeout")
	selfcheck := flag.Bool("selfcheck", false, "bootstrap a tiny model, exercise the API over loopback, exit")
	lifecycleOn := flag.Bool("lifecycle", false, "run the continuous-learning control loop on /v1/samples (bounded stores, drift detection, canary-gated retrains)")
	driftThreshold := flag.Float64("drift-threshold", 0, "lifecycle: accumulated excess error (CUSUM mass) that trips the drift detector (0 = default)")
	minProfiles := flag.Int("min-profiles", 0, "lifecycle: fresh post-drift profiles required before a shadow retrain (0 = default)")
	canaryTolerance := flag.Float64("canary-tolerance", 0, "lifecycle: relative slack a candidate gets on the canary set before promotion (0 = default)")
	driftcheck := flag.Bool("driftcheck", false, "scripted drift episode over loopback: assert one promotion and one rollback, exit")
	modelsPath := flag.String("models", "", "multi-model manifest (JSON, wire Manifest schema): its entries are registered at boot and the file is rewritten after every successful /v2/models register/unregister")
	queueBound := flag.Int("queue-bound", 0, "shed predictions registry-wide (429 + Retry-After) once aggregate queued predictions across all models reach this (0 = no aggregate bound)")
	registrycheck := flag.Bool("registrycheck", false, "three-entry registry over loopback: fan one profile stream, retrain every entry, assert v1/v2 parity and per-model metrics, exit")
	flag.Parse()

	logger := log.New(os.Stderr, "hsserve: ", log.LstdFlags)
	if *selfcheck {
		if err := runSelfcheck(logger); err != nil {
			logger.Fatalf("selfcheck FAILED: %v", err)
		}
		logger.Println("selfcheck passed")
		return
	}
	if *driftcheck {
		if err := runDriftCheck(logger); err != nil {
			logger.Fatalf("driftcheck FAILED: %v", err)
		}
		logger.Println("driftcheck passed")
		return
	}
	if *registrycheck {
		if err := runRegistryCheck(logger); err != nil {
			logger.Fatalf("registrycheck FAILED: %v", err)
		}
		logger.Println("registrycheck passed")
		return
	}

	tr := hsmodel.New(nil, hsmodel.WithSeed(*seed), hsmodel.WithShardLen(*shardLen))
	if *bootstrap {
		if err := bootstrapTrain(tr, *apps, *samples, *pop, *gens, *seed, *shardLen, logger); err != nil {
			logger.Fatal(err)
		}
	}

	scfg := serve.Config{
		Trainer:        tr,
		MaxBatch:       *maxBatch,
		MaxWait:        *maxWait,
		Shards:         *shards,
		RequestTimeout: *timeout,
		ModelPath:      *modelPath,
		ManifestPath:   *modelsPath,
		QueueBound:     *queueBound,
		Logger:         logger,
	}
	if *lifecycleOn {
		lc := hsmodel.LifecycleConfig{
			MinProfiles:     *minProfiles,
			CanaryTolerance: *canaryTolerance,
			Seed:            *seed,
		}
		lc.Drift.Threshold = *driftThreshold
		scfg.Lifecycle = &lc
		logger.Println("lifecycle: continuous learning enabled on /v1/samples")
	}
	srv, err := serve.New(scfg)
	if err != nil {
		logger.Fatal(err)
	}
	if *modelPath != "" {
		// Initial load uses the same guarded path as SIGHUP: a bad file is
		// reported and the server starts (untrained unless bootstrapped),
		// ready for a corrected file and another SIGHUP.
		if err := srv.Reload(); err != nil && !*bootstrap {
			logger.Printf("serving without a model until reload succeeds: %v", err)
		}
	}
	if !tr.Snapshot().Trained() {
		logger.Println("no model yet: predictions answer 503 until /v1/samples+update, -model reload, or -bootstrap")
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	logger.Printf("listening on %s", *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGHUP, syscall.SIGINT, syscall.SIGTERM)
	for {
		select {
		case err := <-errc:
			logger.Fatal(err)
		case sig := <-sigc:
			if sig == syscall.SIGHUP {
				if err := srv.Reload(); err != nil {
					logger.Printf("SIGHUP reload failed, serving previous model: %v", err)
				}
				continue
			}
			logger.Printf("%s: draining...", sig)
			ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			if err := hs.Shutdown(ctx); err != nil {
				logger.Printf("shutdown: %v", err)
			}
			cancel()
			srv.Close() // answer everything the batcher accepted
			logger.Println("drained, bye")
			return
		}
	}
}

// bootstrapTrain collects simulated sparse profiles and trains the serving
// model in-process, so hsserve can run without a model file.
func bootstrapTrain(tr *hsmodel.Trainer, nApps, samples, pop, gens int, seed uint64, shardLen int, logger *log.Logger) error {
	all := trace.SPEC2006()
	if nApps <= 0 || nApps > len(all) {
		nApps = len(all)
	}
	col := &hsmodel.Collector{ShardLen: shardLen}
	logger.Printf("bootstrap: collecting %d samples/app from %d applications...", samples, nApps)
	tr.SetSamples(col.Collect(all[:nApps], samples, seed))
	tr.Search = hsmodel.SearchParams{PopulationSize: pop, Generations: gens, Seed: seed}
	logger.Printf("bootstrap: training (pop %d, %d generations)...", pop, gens)
	start := time.Now()
	if err := tr.Train(context.Background()); err != nil {
		return fmt.Errorf("bootstrap training failed: %w", err)
	}
	snap := tr.Snapshot()
	logger.Printf("bootstrap: trained on %d rows in %s, family %s, spec %s",
		snap.TrainedRows(), time.Since(start).Round(time.Millisecond),
		snap.Family(), snap.Describe().Spec)
	return nil
}

// runSelfcheck is the CI smoke test: bootstrap a tiny model, serve it on a
// random loopback port, then drive the API as a real HTTP client — one
// predict, one coalescing batch, a samples POST, and a metrics scrape — and
// fail on any non-200 or inconsistent answer.
func runSelfcheck(logger *log.Logger) error {
	tr := hsmodel.New(nil, hsmodel.WithSeed(7), hsmodel.WithShardLen(20_000))
	if err := bootstrapTrain(tr, 3, 40, 8, 2, 7, 20_000, logger); err != nil {
		return err
	}
	srv, err := serve.New(serve.Config{Trainer: tr, MaxWait: 5 * time.Millisecond, Logger: logger})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		hs.Shutdown(ctx)
		cancel()
		srv.Close()
	}()

	// A real profile from the trainer's store doubles as the request payload
	// and the expected-value oracle.
	sample := tr.Samples()[0]
	wire := hsmodel.SampleToWire(sample)
	want, err := tr.Snapshot().PredictShard(sample.X, sample.HW)
	if err != nil {
		return err
	}

	// One single-shard predict.
	var pr hsmodel.PredictResponse
	req := hsmodel.PredictRequest{X: wire.X, Config: wire.Config}
	if err := postJSON(base+"/v1/predict", req, &pr); err != nil {
		return fmt.Errorf("predict: %w", err)
	}
	if math.Float64bits(pr.CPI) != math.Float64bits(want) {
		return fmt.Errorf("predict: served CPI %v differs from direct snapshot prediction %v", pr.CPI, want)
	}
	logger.Printf("predict ok: cpi %.4f", pr.CPI)

	// One batch: every item must come back error-free with the oracle value.
	const items = 16
	batch := hsmodel.BatchPredictRequest{}
	for i := 0; i < items; i++ {
		batch.Requests = append(batch.Requests, req)
	}
	var br hsmodel.BatchPredictResponse
	if err := postJSON(base+"/v1/predict:batch", batch, &br); err != nil {
		return fmt.Errorf("predict:batch: %w", err)
	}
	if len(br.Results) != items {
		return fmt.Errorf("predict:batch: %d results for %d requests", len(br.Results), items)
	}
	for i, item := range br.Results {
		if item.Error != "" || math.Float64bits(item.CPI) != math.Float64bits(want) {
			return fmt.Errorf("predict:batch item %d: cpi %v error %q", i, item.CPI, item.Error)
		}
	}
	logger.Printf("batch ok: %d items, mean coalesced batch %.1f", items, srv.BatchMean())

	// Absorb one sample (no async update — keep the check fast).
	var sr hsmodel.SamplesResponse
	if err := postJSON(base+"/v1/samples", hsmodel.SamplesRequest{Samples: []hsmodel.SampleWire{wire}}, &sr); err != nil {
		return fmt.Errorf("samples: %w", err)
	}
	if sr.Accepted != 1 {
		return fmt.Errorf("samples: accepted %d, want 1", sr.Accepted)
	}

	// The metrics page must reflect what we just did.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	page, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("metrics: status %d", resp.StatusCode)
	}
	for _, marker := range []string{
		`hsserve_requests_total{endpoint="predict",code="200"} 1`,
		`hsserve_requests_total{endpoint="predict_batch",code="200"} 1`,
		`hsserve_model_trained 1`,
		`hsserve_batch_size_count`,
	} {
		if !strings.Contains(string(page), marker) {
			return fmt.Errorf("metrics page missing %q", marker)
		}
	}
	logger.Println("metrics ok")
	return nil
}

// runRegistryCheck is the CI smoke test for multi-model serving: it boots a
// server from a three-entry manifest (two application-scoped models plus one
// wildcard) next to the bootstrap-trained default entry, fans one profile
// stream through the legacy /v1/samples route, and asserts the registry
// semantics end to end — every matching entry's store advanced, every entry
// retrains to a served snapshot, /v1 and /v2 answer bit-identical
// predictions for the default entry, wire register/unregister round-trips
// through the persisted manifest, and the scrape carries the per-model
// series.
func runRegistryCheck(logger *log.Logger) error {
	tr := hsmodel.New(nil, hsmodel.WithSeed(7), hsmodel.WithShardLen(20_000))
	if err := bootstrapTrain(tr, 3, 40, 8, 2, 7, 20_000, logger); err != nil {
		return err
	}

	dir, err := os.MkdirTemp("", "hsserve-registrycheck")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	manifestPath := filepath.Join(dir, "models.json")
	man := hsmodel.Manifest{Models: []hsmodel.RegisterRequest{
		{ID: "m-bzip2", Application: "bzip2", Seed: 11, ShardLen: 20_000, Population: 8, Generations: 2},
		{ID: "m-hmmer", Application: "hmmer", Seed: 12, ShardLen: 20_000, Population: 8, Generations: 2},
		{ID: "m-all", Seed: 13, ShardLen: 20_000, Population: 8, Generations: 2},
	}}
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(manifestPath, data, 0o644); err != nil {
		return err
	}

	srv, err := serve.New(serve.Config{
		Trainer: tr, MaxWait: 5 * time.Millisecond, ManifestPath: manifestPath, Logger: logger,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		hs.Shutdown(ctx)
		cancel()
		srv.Close()
	}()
	ctx := context.Background()
	client := hsmodel.NewClient("http://" + ln.Addr().String())

	// The fleet: default + the three manifest entries, default trained.
	reg, err := client.Models(ctx)
	if err != nil {
		return fmt.Errorf("models: %w", err)
	}
	status := make(map[string]hsmodel.ModelStatus, len(reg.Models))
	for _, m := range reg.Models {
		status[m.ID] = m
	}
	if len(reg.Models) != 4 {
		return fmt.Errorf("models: %d entries, want 4 (default + manifest)", len(reg.Models))
	}
	if !status[hsmodel.DefaultModelID].Trained {
		return fmt.Errorf("models: default entry not trained after bootstrap")
	}
	baseline := map[string]int{}
	for id, m := range status {
		baseline[id] = m.TotalSamples
	}

	// Fan one profile stream through the legacy route: every entry whose
	// application scope matches a sample must absorb it.
	apps := []*trace.App{trace.Bzip2(), trace.Hmmer(), trace.Sjeng()}
	col := &hsmodel.Collector{ShardLen: 20_000}
	// 100 samples/app: enough rows for an application-scoped entry (which
	// absorbs only its own third of the stream) to fit a searched spec.
	logger.Println("registrycheck: collecting fan-out stream...")
	stream := col.Collect(apps, 100, 9)
	wire := make([]hsmodel.SampleWire, len(stream))
	perApp := map[string]int{}
	for i, s := range stream {
		wire[i] = hsmodel.SampleToWire(s)
		perApp[s.App]++
	}
	sr, err := client.Samples(ctx, hsmodel.SamplesRequest{Samples: wire})
	if err != nil {
		return fmt.Errorf("samples fan-out: %w", err)
	}
	if sr.Accepted != len(stream) {
		return fmt.Errorf("samples fan-out: accepted %d, want %d", sr.Accepted, len(stream))
	}
	reg, err = client.Models(ctx)
	if err != nil {
		return err
	}
	for _, m := range reg.Models {
		want := len(stream) // wildcard scope ("default", "m-all")
		if app := m.Application; app != "" {
			want = perApp[app]
		}
		if got := m.TotalSamples - baseline[m.ID]; got != want {
			return fmt.Errorf("fan-out: model %q store advanced by %d samples, want %d", m.ID, got, want)
		}
	}
	logger.Printf("fan-out ok: %d samples advanced all %d matching stores", len(stream), len(reg.Models))

	// Retrain every manifest entry on its fanned-out share and wait for the
	// snapshot: trained-row counts must advance from zero.
	sampleFor := func(app string) hsmodel.SampleWire {
		for i, s := range stream {
			if app == "" || s.App == app {
				return wire[i]
			}
		}
		return wire[0]
	}
	for _, id := range []string{"m-bzip2", "m-hmmer", "m-all"} {
		mc := client.Model(id)
		sr, err := mc.Samples(ctx, hsmodel.SamplesRequest{
			Samples: []hsmodel.SampleWire{sampleFor(status[id].Application)},
			Update:  true,
		})
		if err != nil {
			return fmt.Errorf("model %q samples: %w", id, err)
		}
		if !sr.UpdateStarted {
			return fmt.Errorf("model %q: update not started", id)
		}
		deadline := time.Now().Add(2 * time.Minute)
		for {
			info, err := mc.ModelInfo(ctx)
			if err != nil {
				return fmt.Errorf("model %q info: %w", id, err)
			}
			if info.Trained {
				if info.Model != id {
					return fmt.Errorf("model %q info: addressed body names %q", id, info.Model)
				}
				if info.TrainedRows <= 0 {
					return fmt.Errorf("model %q: trained with %d rows", id, info.TrainedRows)
				}
				logger.Printf("model %q trained: family %s, %d rows", id, info.Family, info.TrainedRows)
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("model %q: not trained within deadline", id)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// v1 and the model-addressed v2 route must answer the default entry's
	// predictions bit-identically.
	preq := hsmodel.PredictRequest{X: wire[0].X, Config: wire[0].Config}
	v1p, err := client.Predict(ctx, preq)
	if err != nil {
		return fmt.Errorf("v1 predict: %w", err)
	}
	v2p, err := client.Model(hsmodel.DefaultModelID).Predict(ctx, preq)
	if err != nil {
		return fmt.Errorf("v2 predict: %w", err)
	}
	if math.Float64bits(v1p.CPI) != math.Float64bits(v2p.CPI) {
		return fmt.Errorf("v1/v2 parity: %v vs %v", v1p.CPI, v2p.CPI)
	}
	logger.Printf("v1/v2 parity ok: cpi %.4f", v1p.CPI)

	// The "app:<name>" alias rides the consistent-hash ring to an entry whose
	// scope covers the application.
	info, err := client.Model("app:bzip2").ModelInfo(ctx)
	if err != nil {
		return fmt.Errorf("app alias: %w", err)
	}
	if info.Model == "" || (info.Application != "" && info.Application != "bzip2") {
		return fmt.Errorf("app alias: routed to %q (app %q)", info.Model, info.Application)
	}
	logger.Printf("app:bzip2 routed to %q", info.Model)

	// Wire register/unregister must round-trip through the persisted manifest.
	extra := hsmodel.RegisterRequest{ID: "m-extra", Application: "sjeng", Seed: 14, ShardLen: 20_000, Population: 8, Generations: 2}
	if _, err := client.RegisterModel(ctx, extra); err != nil {
		return fmt.Errorf("register: %w", err)
	}
	if n, err := manifestLen(manifestPath); err != nil || n != 4 {
		return fmt.Errorf("manifest after register: %d entries (err %w), want 4", n, err)
	}
	if err := client.UnregisterModel(ctx, "m-extra"); err != nil {
		return fmt.Errorf("unregister: %w", err)
	}
	if n, err := manifestLen(manifestPath); err != nil || n != 3 {
		return fmt.Errorf("manifest after unregister: %d entries (err %w), want 3", n, err)
	}
	logger.Println("register/unregister ok: manifest persisted")

	// The scrape must carry the registry-wide and per-model series.
	resp, err := http.Get("http://" + ln.Addr().String() + "/metrics")
	if err != nil {
		return err
	}
	page, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	for _, marker := range []string{
		`hsserve_registry_models 4`,
		`hsserve_registry_model_trained{model="m-bzip2"} 1`,
		`hsserve_registry_model_trained{model="m-hmmer"} 1`,
		`hsserve_registry_model_trained{model="m-all"} 1`,
		fmt.Sprintf(`hsserve_registry_model_samples{model="m-all"} %d`, len(stream)+1),
		`hsserve_model_requests_total{model="default",endpoint="predict",code="200"} 1`,
		`hsserve_model_requests_total{model="m-bzip2",endpoint="v2_samples",code="200"} 1`,
	} {
		if !strings.Contains(string(page), marker) {
			return fmt.Errorf("metrics page missing %q", marker)
		}
	}
	logger.Println("registry metrics ok")
	return nil
}

// manifestLen counts the model entries in the persisted manifest.
func manifestLen(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var man hsmodel.Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return 0, err
	}
	return len(man.Models), nil
}

// runDriftCheck is the CI smoke test for the continuous-learning loop: it
// scripts the two decisive lifecycle outcomes end to end through a real HTTP
// client — a persistent regime shift the loop must adapt to (exactly one
// promotion) and a transient label poisoning the loop must refuse (exactly
// one rollback) — and fails unless both happen. Every ingredient is seeded,
// so the episodes replay identically run to run.
func runDriftCheck(logger *log.Logger) error {
	apps := []*trace.App{trace.Bzip2(), trace.Hmmer(), trace.Sjeng()}
	col := &hsmodel.Collector{ShardLen: 20_000, ShardPool: 12}
	logger.Println("driftcheck: collecting bootstrap and stream profiles...")
	train := col.Collect(apps, 40, 7)
	stream := col.Collect(apps, 30, 21)

	// Phase 1 — promotion: a persistent x1.6 label shift (~37% incumbent
	// error against a ~5% clean baseline) trips the detector, the shadow
	// candidate fits the shifted regime and wins the canary.
	st, err := driveDriftEpisode(logger, train, stream, 11, 0, &faultinject.DriftSchedule{
		Segments: []faultinject.DriftSegment{{From: 1, Factor: 1.6}},
	})
	if err != nil {
		return fmt.Errorf("promotion phase: %w", err)
	}
	if st.Promotions != 1 || st.Rollbacks != 0 {
		return fmt.Errorf("promotion phase: promotions=%d rollbacks=%d, want exactly 1/0 (status %+v)", st.Promotions, st.Rollbacks, st)
	}
	logger.Printf("promotion ok: state %s after %d submissions", st.State, st.Submissions)

	// Phase 2 — rollback: a transient x3 shift that ends before the retrain
	// fires poisons the gathered store; the candidate fits a biased mixture,
	// loses the canary against the clean incumbent, and must be rolled back.
	st, err = driveDriftEpisode(logger, train, stream, 5, 0.05, &faultinject.DriftSchedule{
		Segments: []faultinject.DriftSegment{{From: 11, To: 24, Factor: 3}},
	})
	if err != nil {
		return fmt.Errorf("rollback phase: %w", err)
	}
	if st.Rollbacks != 1 || st.Promotions != 0 {
		return fmt.Errorf("rollback phase: promotions=%d rollbacks=%d, want exactly 0/1 (status %+v)", st.Promotions, st.Rollbacks, st)
	}
	if st.State != "cooldown" {
		return fmt.Errorf("rollback phase: state %q, want cooldown", st.State)
	}
	logger.Printf("rollback ok: canary %.3f vs incumbent %.3f, cooling down for %d submissions",
		st.CanaryErr, st.IncumbentErr, st.CooldownRemaining)
	return nil
}

// driveDriftEpisode boots a freshly trained server with the lifecycle loop
// enabled, streams schedule-perturbed profiles through POST /v1/samples one
// at a time — waiting out any in-flight episode between submissions so the
// outcome is fully determined by the seeds — and returns the loop status
// once a promotion or rollback lands.
func driveDriftEpisode(logger *log.Logger, train, stream []hsmodel.Sample, seed uint64, canaryTol float64, sched *faultinject.DriftSchedule) (hsmodel.LifecycleStatus, error) {
	var st hsmodel.LifecycleStatus

	tr := hsmodel.New(append([]hsmodel.Sample(nil), train...),
		hsmodel.WithShardLen(20_000),
		hsmodel.WithSearch(hsmodel.SearchParams{PopulationSize: 10, Generations: 2, Seed: 3}))
	if err := tr.Train(context.Background()); err != nil {
		return st, err
	}

	srv, err := serve.New(serve.Config{
		Trainer: tr,
		MaxWait: time.Millisecond,
		Logger:  logger,
		Lifecycle: &hsmodel.LifecycleConfig{
			Drift:           hsmodel.DriftConfig{Target: 0.2},
			MinProfiles:     10,
			MinTrainRows:    24,
			ReservoirCap:    64,
			RingCap:         32,
			CanaryTolerance: canaryTol,
			Seed:            seed,
			Resilience:      hsmodel.Resilience{StepwiseBudget: 150},
		},
	})
	if err != nil {
		return st, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return st, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		hs.Shutdown(ctx)
		cancel()
		srv.Close()
	}()

	deadline := time.Now().Add(3 * time.Minute)
	for i := 0; ; i++ {
		if time.Now().After(deadline) {
			return st, fmt.Errorf("no episode outcome within deadline (status %+v)", st)
		}
		v := stream[i%len(stream)]
		v.CPI, _ = sched.Next(v.CPI)
		var sr hsmodel.SamplesResponse
		if err := postJSON(base+"/v1/samples", hsmodel.SamplesRequest{
			Samples: []hsmodel.SampleWire{hsmodel.SampleToWire(v)},
		}, &sr); err != nil {
			return st, fmt.Errorf("submission %d: %w", i+1, err)
		}
		// Wait out the background episode so the submission order alone
		// determines what the loop sees.
		for {
			if err := getJSON(base+"/v1/lifecycle", &st); err != nil {
				return st, err
			}
			if st.State != "retraining" && st.State != "canary" {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if st.Promotions > 0 || st.Rollbacks > 0 {
			return st, nil
		}
	}
}

// getJSON GETs url and decodes the response into out, failing on non-200.
func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e hsmodel.ErrorResponse
		json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("status %d: %s", resp.StatusCode, e.Error)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// postJSON POSTs v and decodes the response into out, failing on non-200.
func postJSON(url string, v, out any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e hsmodel.ErrorResponse
		json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("status %d: %s", resp.StatusCode, e.Error)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
