// Command hslint is the repo's invariant checker: a stdlib-only multichecker
// over the analyzers in internal/analysis. It enforces, at CI time, the
// contracts the engine's correctness rests on — the trainer's lock order,
// snapshot immutability, search determinism, errors.Is matching, float
// comparison discipline, and context propagation. See DESIGN.md §10.
//
// Usage:
//
//	hslint ./...                      lint packages (go list patterns)
//	hslint -dir path/to/testdata      lint loose directories (testdata trees
//	                                  the go tool will not enumerate)
//	hslint -checks floateq,errcmp ./...
//	hslint -list
//
// Diagnostics print as file:line:col: message [check]. Exit status: 0 clean,
// 1 diagnostics reported, 2 usage or load failure.
//
// A site may suppress one diagnostic with an in-line directive carrying a
// mandatory reason:
//
//	//hslint:ignore <check> <reason>
//
// Unknown check names, missing reasons, and stale directives are themselves
// diagnostics, so suppressions cannot rot.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hsmodel/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		dirMode = flag.Bool("dir", false, "treat arguments as directories of Go files (testdata trees) instead of package patterns")
		checks  = flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
		list    = flag.Bool("list", false, "list available checks and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: hslint [-dir] [-checks c1,c2] patterns...")
		return 2
	}

	var names []string
	if *checks != "" {
		names = strings.Split(*checks, ",")
	}
	analyzers, err := analysis.Select(names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hslint:", err)
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "hslint:", err)
		return 2
	}
	loader := analysis.NewLoader(cwd)

	var pkgs []*analysis.Package
	if *dirMode {
		for _, dir := range flag.Args() {
			loaded, err := loader.LoadDir(dir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hslint:", err)
				return 2
			}
			pkgs = append(pkgs, loaded...)
		}
	} else {
		pkgs, err = loader.LoadPackages(flag.Args()...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hslint:", err)
			return 2
		}
	}

	diags := analysis.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
