// Command hslint is the repo's invariant checker: a stdlib-only multichecker
// over the analyzers in internal/analysis. It enforces, at CI time, the
// contracts the engine's correctness rests on — the trainer's lock order,
// snapshot immutability, search determinism, errors.Is matching, float
// comparison discipline, context propagation, goroutine lifecycle, atomic
// publication, and bounded container growth. See DESIGN.md §10 and §15.
//
// Usage:
//
//	hslint ./...                      lint packages (go list patterns)
//	hslint -dir path/to/testdata      lint loose directories (testdata trees
//	                                  the go tool will not enumerate)
//	hslint -checks floateq,errcmp ./...
//	hslint -fix -diff ./...           show the diff -fix would apply
//	hslint -fix ./...                 apply suggested fixes in place
//	hslint -format sarif ./...        SARIF 2.1.0 on stdout (CI annotations)
//	hslint -baseline .hslint-baseline.json ./...
//	hslint -write-baseline .hslint-baseline.json ./...
//	hslint -list                      machine-readable check listing
//
// Diagnostics print as file:line:col: message [check]. With -baseline,
// findings recorded in the baseline are reported with a "(baselined)"
// suffix and do not fail the run; fresh findings do. Exit status: 0 clean
// (or all findings baselined), 1 fresh diagnostics reported, 2 usage or
// load failure.
//
// A site may suppress one diagnostic with an in-line directive carrying a
// mandatory reason:
//
//	//hslint:ignore <check> <reason>
//
// Unknown check names, missing reasons, and stale directives are themselves
// diagnostics, so suppressions cannot rot.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hsmodel/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		dirMode   = flag.Bool("dir", false, "treat arguments as directories of Go files (testdata trees) instead of package patterns")
		checks    = flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
		list      = flag.Bool("list", false, "list available checks (name<TAB>doc per line) and exit")
		fix       = flag.Bool("fix", false, "apply suggested fixes to the source tree")
		diff      = flag.Bool("diff", false, "with -fix, print the diff instead of writing files")
		format    = flag.String("format", "text", "output format: text or sarif")
		baseline  = flag.String("baseline", "", "baseline file of grandfathered findings; fresh findings still fail")
		writeBase = flag.String("write-baseline", "", "write current findings to this baseline file and exit 0")
	)
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%s\t%s\n", a.Name, a.Doc)
		}
		return 0
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: hslint [-dir] [-checks c1,c2] [-fix [-diff]] [-format text|sarif] [-baseline file | -write-baseline file] patterns...")
		return 2
	}
	if *format != "text" && *format != "sarif" {
		fmt.Fprintf(os.Stderr, "hslint: unknown format %q (available: text, sarif)\n", *format)
		return 2
	}

	var names []string
	if *checks != "" {
		names = strings.Split(*checks, ",")
	}
	analyzers, err := analysis.Select(names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hslint:", err)
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "hslint:", err)
		return 2
	}
	loader := analysis.NewLoader(cwd)

	var pkgs []*analysis.Package
	if *dirMode {
		for _, dir := range flag.Args() {
			loaded, err := loader.LoadDir(dir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hslint:", err)
				return 2
			}
			pkgs = append(pkgs, loaded...)
		}
	} else {
		pkgs, err = loader.LoadPackages(flag.Args()...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hslint:", err)
			return 2
		}
	}

	diags := analysis.Run(pkgs, analyzers)

	if *fix {
		results, err := analysis.ApplyFixes(diags, !*diff)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hslint:", err)
			return 2
		}
		applied, skipped := 0, 0
		for _, r := range results {
			applied += r.Applied
			skipped += r.Skipped
			if *diff && r.Applied > 0 {
				fmt.Print(analysis.Diff(r))
			}
		}
		if !*diff {
			fmt.Fprintf(os.Stderr, "hslint: applied %d fix(es)", applied)
			if skipped > 0 {
				fmt.Fprintf(os.Stderr, ", skipped %d (overlap)", skipped)
			}
			fmt.Fprintln(os.Stderr)
		}
		return 0
	}

	if *writeBase != "" {
		if err := analysis.WriteBaseline(*writeBase, diags, cwd); err != nil {
			fmt.Fprintln(os.Stderr, "hslint:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "hslint: wrote %d finding(s) to %s\n", len(diags), *writeBase)
		return 0
	}

	matched := make([]bool, len(diags))
	fresh := len(diags)
	if *baseline != "" {
		base, err := analysis.ReadBaseline(*baseline, false)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hslint:", err)
			return 2
		}
		matched, fresh = base.Match(diags, cwd)
	}

	if *format == "sarif" {
		out, err := analysis.SARIF(diags, matched, analyzers, cwd)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hslint:", err)
			return 2
		}
		fmt.Println(string(out))
	} else {
		for i, d := range diags {
			if matched[i] {
				fmt.Printf("%s (baselined)\n", d)
			} else {
				fmt.Println(d)
			}
		}
	}
	if fresh > 0 {
		return 1
	}
	return 0
}
