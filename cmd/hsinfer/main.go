// Command hsinfer is the integrated hardware-software modeling tool: it
// profiles workload shards, trains inferred performance models from sparse
// samples, persists them as JSON, and answers predictions.
//
//	hsinfer profile -app bzip2 -shards 5
//	hsinfer train   -samples 120 -out model.json
//	hsinfer predict -model model.json -app astar -shard 3
//	hsinfer predict -model model.json -app astar -shard 3 -arch 3,5,2,4,3,3,4,0,3,1,2,1,3
//	hsinfer model   -model model.json
//
// predict -json and model -json emit the same wire schema the hsserve HTTP
// service speaks (PredictResponse, ModelInfo, ErrorResponse), so scripted
// consumers can switch between the CLI and the service without reparsing.
// With -addr, predict and model drive a live hsserve instead of a local
// snapshot file — the legacy /v1 routes by default, or one entry of the
// multi-model registry when -model-id names it (an exact id or the
// "app:<name>" consistent-hash alias):
//
//	hsinfer predict -addr http://localhost:8080 -app astar -shard 3
//	hsinfer model   -addr http://localhost:8080 -model-id app:bzip2
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"hsmodel/internal/isa"
	"hsmodel/internal/profile"
	"hsmodel/internal/trace"
	"hsmodel/pkg/hsmodel"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	// ^C cancels in-flight training within one search generation instead of
	// killing the process mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var err error
	switch os.Args[1] {
	case "profile":
		err = cmdProfile(os.Args[2:])
	case "train":
		err = cmdTrain(ctx, os.Args[2:])
	case "predict":
		err = cmdPredict(os.Args[2:])
	case "model":
		err = cmdModel(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hsinfer:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: hsinfer <profile|train|predict|model> [flags]")
	os.Exit(2)
}

func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	appName := fs.String("app", "bzip2", "application name")
	shards := fs.Int("shards", 5, "number of shards to profile")
	shardLen := fs.Int("shardlen", hsmodel.DefaultShardLen, "shard length in instructions")
	fs.Parse(args)

	app, err := trace.ByName(*appName)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	profs := profile.StreamShards(app.Name, profile.ShardRange(*shards), 0, func(s int) isa.Stream {
		return app.ShardStream(s, *shardLen)
	})
	for _, p := range profs {
		if err := enc.Encode(p); err != nil {
			return err
		}
	}
	return nil
}

func cmdTrain(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	samples := fs.Int("samples", 120, "training (shard, architecture) pairs per application")
	shardLen := fs.Int("shardlen", 50_000, "shard length in instructions")
	pop := fs.Int("pop", 36, "genetic population size")
	gens := fs.Int("gens", 12, "genetic generations")
	seed := fs.Uint64("seed", 1, "random seed")
	out := fs.String("out", "model.json", "output model path")
	timeout := fs.Duration("timeout", 0, "genetic search deadline before degrading to stepwise (0 = none)")
	families := fs.String("families", "", `model families to select among: "all", or a comma-separated subset of spline,residual,dal (empty = classic spline-only engine)`)
	fs.Parse(args)

	opts := []hsmodel.Option{
		hsmodel.WithSearch(hsmodel.SearchParams{PopulationSize: *pop, Generations: *gens, Seed: *seed}),
		hsmodel.WithShardLen(*shardLen),
	}
	switch *families {
	case "":
	case "all":
		opts = append(opts, hsmodel.WithFamilySelection())
	default:
		var fams []hsmodel.ModelFamily
		for _, name := range strings.Split(*families, ",") {
			f := hsmodel.FamilyByName(strings.TrimSpace(name))
			if f == nil {
				return fmt.Errorf("unknown model family %q (have spline, residual, dal)", name)
			}
			fams = append(fams, f)
		}
		opts = append(opts, hsmodel.WithFamilies(fams...))
	}

	apps := trace.SPEC2006()
	col := &hsmodel.Collector{ShardLen: *shardLen}
	fmt.Fprintf(os.Stderr, "collecting %d samples/app across %d applications...\n", *samples, len(apps))
	m := hsmodel.New(col.Collect(apps, *samples, *seed), opts...)
	fmt.Fprintln(os.Stderr, "training...")
	// Degradation ladder: genetic search, then stepwise, then the last-good
	// model already at -out (if any). See DESIGN.md "Failure modes".
	rep, err := m.TrainResilient(ctx, hsmodel.Resilience{
		SearchTimeout: *timeout,
		LastGoodPath:  *out,
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, rep)
	if rep.Rung == hsmodel.RungLastGood {
		// The model on disk is already the one being served; do not rewrite it.
		fmt.Fprintf(os.Stderr, "keeping existing model at %s\n", *out)
		return nil
	}
	if sel := m.Selection(); sel != nil {
		names := make([]string, 0, len(sel.Scores))
		for name := range sel.Scores {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(os.Stderr, "family %-9s CV MedAPE %.4f\n", name, sel.Scores[name])
		}
		failed := make([]string, 0, len(sel.Errors))
		for name := range sel.Errors {
			failed = append(failed, name)
		}
		sort.Strings(failed)
		for _, name := range failed {
			fmt.Fprintf(os.Stderr, "family %-9s failed: %v\n", name, sel.Errors[name])
		}
		fmt.Fprintf(os.Stderr, "selected family: %s\n", sel.Winner)
	}
	if pop := m.Population(); len(pop) > 0 {
		fmt.Fprintf(os.Stderr, "best fitness %.4f, spec: %s\n", pop[0].Fitness, pop[0].Spec)
	}

	if err := m.Save(*out, *shardLen); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "model written to %s\n", *out)
	return nil
}

// parseArch converts the CLI's comma-separated Table 2 level indices through
// the same validation path as the wire schema's `arch` field.
func parseArch(arch string) (hsmodel.Config, error) {
	if arch == "" {
		return hsmodel.Baseline(), nil
	}
	parts := strings.Split(arch, ",")
	ix := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return hsmodel.Config{}, err
		}
		ix[i] = v
	}
	return hsmodel.ConfigFromArch(ix)
}

func cmdPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	modelPath := fs.String("model", "model.json", "trained model path")
	addr := fs.String("addr", "", "ask a live hsserve at this base URL instead of loading -model")
	modelID := fs.String("model-id", "", "with -addr: the registry entry to address over /v2 (exact id or app:<name>; empty = the /v1 default)")
	appName := fs.String("app", "astar", "application name")
	shard := fs.Int("shard", 0, "shard index")
	shardLen := fs.Int("shardlen", hsmodel.DefaultShardLen, "with -addr: shard length in instructions (local mode uses the model's)")
	arch := fs.String("arch", "", "13 comma-separated Table 2 level indices (default: baseline)")
	check := fs.Bool("check", true, "also simulate the pair and report error")
	asJSON := fs.Bool("json", false, "emit the wire-schema PredictResponse (errors as ErrorResponse)")
	fs.Parse(args)

	err := predict(*modelPath, *addr, *modelID, *appName, *shard, *shardLen, *arch, *check, *asJSON)
	if err != nil && *asJSON {
		json.NewEncoder(os.Stdout).Encode(hsmodel.ErrorResponse{Error: err.Error()})
		os.Exit(1)
	}
	return err
}

func predict(modelPath, addr, modelID, appName string, shard, shardLen int, arch string, check, asJSON bool) error {
	var snap *hsmodel.Snapshot
	if addr == "" {
		var err error
		snap, err = hsmodel.LoadSnapshot(modelPath)
		if err != nil {
			return err
		}
		shardLen = snap.ShardLen()
	}

	app, err := trace.ByName(appName)
	if err != nil {
		return err
	}
	hw, err := parseArch(arch)
	if err != nil {
		return err
	}

	p := profile.Stream(app.ShardStream(shard, shardLen), app.Name, shard)
	var pred float64
	if addr == "" {
		pred, err = snap.PredictShard(p.X, hw)
	} else {
		client := hsmodel.NewClient(addr, hsmodel.WithModelID(modelID))
		var resp hsmodel.PredictResponse
		resp, err = client.Predict(context.Background(), hsmodel.PredictRequest{X: p.X[:], Config: &hw})
		pred = resp.CPI
	}
	if err != nil {
		return err
	}
	if asJSON {
		return json.NewEncoder(os.Stdout).Encode(hsmodel.PredictResponse{CPI: pred, Shards: 1})
	}
	fmt.Printf("%s shard %d on %s\n", app.Name, shard, hw)
	fmt.Printf("  predicted CPI: %.4f\n", pred)
	if check {
		col := &hsmodel.Collector{ShardLen: shardLen}
		truth := col.CollectPairs([]*trace.App{app}, []int{0}, []int{shard}, []hsmodel.Config{hw})[0].CPI
		errPct := 100 * (pred - truth) / truth
		fmt.Printf("  simulated CPI: %.4f (prediction error %+.1f%%)\n", truth, errPct)
	}
	return nil
}

func cmdModel(args []string) error {
	fs := flag.NewFlagSet("model", flag.ExitOnError)
	modelPath := fs.String("model", "model.json", "trained model path")
	addr := fs.String("addr", "", "ask a live hsserve at this base URL instead of loading -model")
	modelID := fs.String("model-id", "", "with -addr: the registry entry to address over /v2 (exact id or app:<name>; empty = the /v1 default)")
	asJSON := fs.Bool("json", false, "emit the wire-schema ModelInfo (errors as ErrorResponse)")
	fs.Parse(args)

	info, err := modelInfo(*modelPath, *addr, *modelID)
	if err != nil {
		if *asJSON {
			json.NewEncoder(os.Stdout).Encode(hsmodel.ErrorResponse{Error: err.Error()})
			os.Exit(1)
		}
		return err
	}
	if *asJSON {
		return json.NewEncoder(os.Stdout).Encode(info)
	}
	source := *modelPath
	if *addr != "" {
		source = *addr
		if info.Model != "" {
			source += " model " + info.Model
		}
	}
	fmt.Printf("model %s\n", source)
	if info.Application != "" {
		fmt.Printf("  application:  %s\n", info.Application)
	}
	if !info.Trained {
		fmt.Println("  trained:      false")
		return nil
	}
	fmt.Printf("  family:       %s\n", info.Family)
	fmt.Printf("  rung:         %s\n", info.Rung)
	fmt.Printf("  trained rows: %d\n", info.TrainedRows)
	fmt.Printf("  shard length: %d\n", info.ShardLen)
	fmt.Printf("  terms:        %d\n", info.Terms)
	fmt.Printf("  spec:         %s\n", info.Spec)
	if info.Detail != "" {
		fmt.Printf("  detail:       %s\n", info.Detail)
	}
	if len(info.FamilyScores) > 0 {
		names := make([]string, 0, len(info.FamilyScores))
		for name := range info.FamilyScores {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("  score[%s]: %.4f\n", name, info.FamilyScores[name])
		}
	}
	return nil
}

// modelInfo assembles the wire ModelInfo either from a local snapshot file or
// from a live server's /v1/model or /v2/models/{id}/model route.
func modelInfo(modelPath, addr, modelID string) (hsmodel.ModelInfo, error) {
	if addr != "" {
		client := hsmodel.NewClient(addr, hsmodel.WithModelID(modelID))
		return client.ModelInfo(context.Background())
	}
	snap, err := hsmodel.LoadSnapshot(modelPath)
	if err != nil {
		return hsmodel.ModelInfo{}, err
	}
	desc := snap.Describe()
	return hsmodel.ModelInfo{
		Trained:      true,
		Family:       snap.Family(),
		FamilyScores: snap.FamilyScores(),
		Spec:         desc.Spec,
		Terms:        desc.Terms,
		Detail:       desc.Detail,
		Rung:         snap.Rung().String(),
		TrainedRows:  snap.TrainedRows(),
		ShardLen:     snap.ShardLen(),
	}, nil
}
