// Command hsinfer is the integrated hardware-software modeling tool: it
// profiles workload shards, trains inferred performance models from sparse
// samples, persists them as JSON, and answers predictions.
//
//	hsinfer profile -app bzip2 -shards 5
//	hsinfer train   -samples 120 -out model.json
//	hsinfer predict -model model.json -app astar -shard 3
//	hsinfer predict -model model.json -app astar -shard 3 -arch 3,5,2,4,3,3,4,0,3,1,2,1,3
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"hsmodel/internal/core"
	"hsmodel/internal/genetic"
	"hsmodel/internal/hwspace"
	"hsmodel/internal/isa"
	"hsmodel/internal/profile"
	"hsmodel/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	// ^C cancels in-flight training within one search generation instead of
	// killing the process mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var err error
	switch os.Args[1] {
	case "profile":
		err = cmdProfile(os.Args[2:])
	case "train":
		err = cmdTrain(ctx, os.Args[2:])
	case "predict":
		err = cmdPredict(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hsinfer:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: hsinfer <profile|train|predict> [flags]")
	os.Exit(2)
}

func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	appName := fs.String("app", "bzip2", "application name")
	shards := fs.Int("shards", 5, "number of shards to profile")
	shardLen := fs.Int("shardlen", core.DefaultShardLen, "shard length in instructions")
	fs.Parse(args)

	app, err := trace.ByName(*appName)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	profs := profile.StreamShards(app.Name, profile.ShardRange(*shards), 0, func(s int) isa.Stream {
		return app.ShardStream(s, *shardLen)
	})
	for _, p := range profs {
		if err := enc.Encode(p); err != nil {
			return err
		}
	}
	return nil
}

func cmdTrain(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	samples := fs.Int("samples", 120, "training (shard, architecture) pairs per application")
	shardLen := fs.Int("shardlen", 50_000, "shard length in instructions")
	pop := fs.Int("pop", 36, "genetic population size")
	gens := fs.Int("gens", 12, "genetic generations")
	seed := fs.Uint64("seed", 1, "random seed")
	out := fs.String("out", "model.json", "output model path")
	timeout := fs.Duration("timeout", 0, "genetic search deadline before degrading to stepwise (0 = none)")
	fs.Parse(args)

	apps := trace.SPEC2006()
	col := &core.Collector{ShardLen: *shardLen}
	fmt.Fprintf(os.Stderr, "collecting %d samples/app across %d applications...\n", *samples, len(apps))
	m := core.NewTrainer(col.Collect(apps, *samples, *seed))
	m.ShardLen = *shardLen
	m.Search = genetic.Params{PopulationSize: *pop, Generations: *gens, Seed: *seed}
	fmt.Fprintln(os.Stderr, "training...")
	// Degradation ladder: genetic search, then stepwise, then the last-good
	// model already at -out (if any). See DESIGN.md "Failure modes".
	rep, err := m.TrainResilient(ctx, core.Resilience{
		SearchTimeout: *timeout,
		LastGoodPath:  *out,
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, rep)
	if rep.Rung == core.RungLastGood {
		// The model on disk is already the one being served; do not rewrite it.
		fmt.Fprintf(os.Stderr, "keeping existing model at %s\n", *out)
		return nil
	}
	fmt.Fprintf(os.Stderr, "best fitness %.4f, spec: %s\n",
		m.Population()[0].Fitness, m.Population()[0].Spec)

	if err := m.Save(*out, *shardLen); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "model written to %s\n", *out)
	return nil
}

func cmdPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	modelPath := fs.String("model", "model.json", "trained model path")
	appName := fs.String("app", "astar", "application name")
	shard := fs.Int("shard", 0, "shard index")
	arch := fs.String("arch", "", "13 comma-separated Table 2 level indices (default: baseline)")
	check := fs.Bool("check", true, "also simulate the pair and report error")
	fs.Parse(args)

	snap, err := core.LoadSnapshot(*modelPath)
	if err != nil {
		return err
	}
	shardLen := snap.ShardLen()

	app, err := trace.ByName(*appName)
	if err != nil {
		return err
	}
	hw := hwspace.Baseline()
	if *arch != "" {
		var ix hwspace.Indices
		parts := strings.Split(*arch, ",")
		if len(parts) != hwspace.NumParams {
			return fmt.Errorf("-arch needs %d indices, got %d", hwspace.NumParams, len(parts))
		}
		for i, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return err
			}
			ix[i] = v
		}
		hw = hwspace.FromIndices(ix)
	}

	p := profile.Stream(app.ShardStream(*shard, shardLen), app.Name, *shard)
	pred, err := snap.PredictShard(p.X, hw)
	if err != nil {
		return err
	}
	fmt.Printf("%s shard %d on %s\n", app.Name, *shard, hw)
	fmt.Printf("  predicted CPI: %.4f\n", pred)
	if *check {
		col := &core.Collector{ShardLen: shardLen}
		truth := col.CollectPairs([]*trace.App{app}, []int{0}, []int{*shard}, []hwspace.Config{hw})[0].CPI
		errPct := 100 * (pred - truth) / truth
		fmt.Printf("  simulated CPI: %.4f (prediction error %+.1f%%)\n", truth, errPct)
	}
	return nil
}
