// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [flags] <id>...
//	experiments -list
//	experiments all
//
// IDs: fig3 fig4 fig5 table3 fig7a fig7b fig7c fig9 fig10 fig12 fig13 fig14
// fig15 fig16 partime costs manual ablations. The search-anatomy trio (fig4,
// fig5, table3) shares one genetic search.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hsmodel/internal/experiments"
)

var order = []string{
	"fig3", "fig5", "fig4", "table3", "fig7a", "fig10", "fig7b", "fig7c",
	"fig9", "partime", "costs", "manual",
	"fig12", "fig13", "fig14", "fig15", "fig16", "ablations",
}

func main() {
	var (
		paper = flag.Bool("paper", false, "run at paper scale (hours) instead of quick scale (minutes)")
		seed  = flag.Uint64("seed", 1, "master random seed")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()
	if *list {
		for _, id := range order {
			fmt.Println(id)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: experiments [-paper] [-seed N] <id>...|all  (see -list)")
		os.Exit(2)
	}

	cfg := experiments.Quick()
	if *paper {
		cfg = experiments.Paper()
	}
	cfg.Seed = *seed
	// ^C cancels the running experiment within one search generation.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	w := experiments.NewWorkspaceContext(ctx, cfg)

	ids := args
	if len(args) == 1 && args[0] == "all" {
		ids = order
	}
	for _, id := range ids {
		start := time.Now()
		if err := run(w, id); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("[%s done in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

func run(w *experiments.Workspace, id string) error {
	switch id {
	case "fig3":
		experiments.Fig3(w)
	case "fig4", "fig5", "table3":
		_, err := experiments.SearchAnatomy(w)
		return err
	case "fig7a", "fig8a":
		_, err := experiments.Fig7a(w)
		return err
	case "fig7b", "fig8b":
		_, err := experiments.Fig7b(w)
		return err
	case "fig7c", "fig8c":
		_, err := experiments.Fig7c(w)
		return err
	case "fig9":
		experiments.Fig9(w)
	case "fig10":
		_, err := experiments.Fig10(w)
		return err
	case "partime":
		experiments.ParTime(w, []int{1, 2, 4, 8})
	case "costs":
		_, err := experiments.Costs(w)
		return err
	case "manual":
		_, err := experiments.Manual(w)
		return err
	case "fig12":
		_, err := experiments.Fig12(w)
		return err
	case "fig13":
		_, err := experiments.Fig13(w)
		return err
	case "fig14":
		_, err := experiments.Fig14(w)
		return err
	case "fig15":
		_, err := experiments.Fig15(w)
		return err
	case "fig16":
		_, err := experiments.Fig16(w)
		return err
	case "ablations":
		for _, f := range []func(*experiments.Workspace) (experiments.AblationResult, error){
			experiments.AblationStabilization,
			experiments.AblationInteractions,
			experiments.AblationSharding,
			experiments.AblationStepwise,
			experiments.AblationDomainSpecific,
			experiments.AblationLogResponse,
		} {
			if _, err := f(w); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown experiment %q (see -list)", id)
	}
	return nil
}
