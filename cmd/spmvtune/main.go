// Command spmvtune runs the Section 5 coordinated hardware-software tuning
// flow for one Table 4 matrix: sample the integrated SpMV-cache space, train
// inferred performance/power models, and tune the application (block size),
// the architecture (cache), or both.
//
//	spmvtune -matrix nasasrb
//	spmvtune -matrix raefsky3 -scale 4 -samples 600 -exhaustive
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"hsmodel/internal/genetic"
	"hsmodel/internal/spmv"
)

func main() {
	var (
		matrix     = flag.String("matrix", "raefsky3", "Table 4 matrix name")
		scale      = flag.Int("scale", 16, "matrix scale divisor (1 = published size)")
		samples    = flag.Int("samples", 300, "training samples for the inferred models")
		candidates = flag.Int("candidates", 150, "cache configurations considered per search")
		exhaustive = flag.Bool("exhaustive", false, "rank candidates by simulation instead of the inferred model")
		seed       = flag.Uint64("seed", 7, "random seed")
		list       = flag.Bool("list", false, "list matrices and exit")
	)
	flag.Parse()

	// ^C cancels in-flight training within one search generation.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *list {
		for _, ms := range spmv.Corpus() {
			fmt.Printf("%2d %-10s %7d x %-7d nnz %-8d sparsity %.2e\n",
				ms.Index, ms.Name, ms.N, ms.N, ms.NNZ,
				float64(ms.NNZ)/(float64(ms.N)*float64(ms.N)))
		}
		return
	}

	spec, err := spmv.ByName(*matrix)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spmvtune:", err)
		os.Exit(1)
	}
	spec = spec.Scaled(*scale)
	study := spmv.NewStudy(spec)
	fmt.Printf("%s: %d x %d, %d non-zeros (fill at natural block %dx%d: %.3f)\n",
		spec.Name, study.M.Rows, study.M.Cols, study.M.NNZ(),
		spec.NBRow, spec.NBCol, study.FillRatio(maxInt(spec.NBRow, 1), maxInt(spec.NBCol, 1)))

	opts := spmv.TuneOptions{Study: study, CacheCandidates: *candidates, Seed: *seed}
	if !*exhaustive {
		fmt.Printf("training models on %d samples...\n", *samples)
		models, err := spmv.TrainModels(ctx, spec.Name, study.Sample(*samples, *seed), spmv.TrainOptions{
			Search: genetic.Params{PopulationSize: 24, Generations: 10, Seed: *seed},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "spmvtune:", err)
			os.Exit(1)
		}
		opts.Models = &models
	}

	res := spmv.Tune(opts)
	fmt.Printf("\n%-13s %10s %10s %8s %s\n", "strategy", "Mflop/s", "speedup", "nJ/Flop", "choice")
	row := func(name string, c spmv.TuneChoice, speedup float64) {
		fmt.Printf("%-13s %10.1f %9.2fx %8.1f %dx%d on %s\n",
			name, c.MFlops, speedup, c.NJFlop, c.R, c.C, c.Cfg)
	}
	row("baseline", res.Baseline, 1.0)
	row("app-tuned", res.AppTuned, res.AppSpeedup())
	row("arch-tuned", res.ArchTuned, res.ArchSpeedup())
	row("coordinated", res.Coordinated, res.CoordSpeedup())
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
